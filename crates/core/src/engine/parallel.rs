//! Key-sharded parallel engine (ROADMAP "as fast as the hardware
//! allows": sharding + batching).
//!
//! Scotty-style slicing is embarrassingly parallel across keys: slice
//! partials merge associatively and every key's events fold into exactly
//! one shard, so per-key operator states are computed in the same order
//! as a sequential engine and merging shard partials per slice
//! reconstructs the sequential slice exactly. [`ParallelEngine`]
//! hash-partitions events by `key % shards` across N worker threads,
//! each running the existing reorder→slicer pipeline, and a
//! shard-merging window assembler recombines the per-shard slice
//! partials before emission.
//!
//! **What shards.** *Fixed time* windows
//! ([`crate::window::WindowSpec::has_precomputable_puncts`]) slice at
//! data-independent instants on every shard and merge by slice-end
//! timestamp. *Session* and *user-defined* windows define their
//! boundaries over the whole stream, so their per-shard slicers see only
//! fragments; the collector-side [`unfixed::UnfixedShardMerger`]
//! span-overlap-merges per-shard session fragments (gated by per-shard
//! *clear frontiers* so no session is released before the sequential
//! engine would have closed it) and aligns user-defined windows, whose
//! boundary markers the inlet broadcasts to every shard. *Count*
//! windows advance only on selection-matching events, so each shard
//! runs the query's selection predicates as a filter and forwards
//! matches — tagged with inlet sequence numbers — back to the
//! collector, where a sequential replay pipeline consumes them in
//! global ingest order at every watermark barrier (the parallel win is
//! the distributed predicate evaluation, not the aggregation itself).
//! No query class pins the caller thread anymore.
//!
//! **Determinism.** Watermarks are barriers: [`ParallelEngine::on_watermark`]
//! waits until every live shard acknowledged the watermark, so the set
//! of results visible to a drain after a watermark depends only on the
//! ingested events and watermarks — never on thread scheduling. Drained
//! results are sorted into the canonical `(query, window end, key,
//! window start)` order ([`crate::query::QueryResult::emit_order`]), so
//! parallel runs are byte-reproducible.
//!
//! **Shutdown.** A shard worker that panics is *degraded*: a drop guard
//! reports the panic through the [`handoff::Inbox`], the collector stops
//! waiting for the shard, and later slices are force-released without
//! its contributions (counted by `engine.shard_panics`) — mirroring how
//! the decentralized substrate degrades lost children.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use rustc_hash::FxHashMap;

use crate::aggregate::{AggFunction, OperatorBundle};
use crate::engine::reorder::ReorderBuffer;
use crate::engine::slice::{SealedSlice, SliceData, SliceId};
use crate::engine::slicer::GroupSlicer;
use crate::engine::{Assembler, QueryAnalyzer, QueryGroup};
use crate::error::DesisError;
use crate::event::{Event, EventBatch, Key};
use crate::metrics::EngineMetrics;
use crate::obs::prof::{self, ProfHandle, Profiler, Stage};
use crate::obs::trace::{SpanKind, TraceCollector, TraceRecorder};
use crate::obs::{names, Counter, MetricsRegistry};
use crate::predicate::Predicate;
use crate::query::{Query, QueryId, QueryResult};
use crate::time::{DurationMs, Timestamp};
use crate::window::{WindowKind, WindowSpec};

pub mod handoff;
pub mod unfixed;

use handoff::{Inbox, InboxGuard, ShardExit};
use unfixed::UnfixedShardMerger;

/// Tunables of the parallel engine.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Worker shard count (clamped to at least 1).
    pub shards: usize,
    /// Events accumulated at the inlet before a batch is sent to the
    /// shards (amortizes channel overhead).
    pub batch_size: usize,
    /// Per-shard channel capacity in batches (bounded channels give
    /// backpressure, i.e. sustainable throughput).
    pub channel_capacity: usize,
    /// Allowed out-of-orderness: `Some(l)` runs a reorder buffer of
    /// lateness `l` in front of every shard's slicers (and the
    /// collector-side count replays); `None` assumes timestamp-ordered
    /// input, like [`super::AggregationEngine`].
    pub lateness: Option<DurationMs>,
    /// Registry the sharded slicer resolves its per-shard hot-path
    /// counter handles against at spawn (so the inlet increments live
    /// counters instead of deferring to a publish); `None` keeps the
    /// counters internal until [`ShardedSlicer::publish`].
    pub registry: Option<Arc<MetricsRegistry>>,
    /// Pipeline profiler: shard workers and the collector open stage
    /// scopes against it ([`crate::obs::prof`]). Defaults to the
    /// process-global profiler, if one is installed.
    pub profiler: Option<Profiler>,
}

impl ParallelConfig {
    /// A configuration with `shards` workers and default batching.
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
            batch_size: 256,
            channel_capacity: 64,
            lateness: None,
            registry: None,
            profiler: Profiler::global().cloned(),
        }
    }
}

/// Clock stamp for a manual (non-RAII) stage span; `None` when no
/// profiler is attached or it is disabled.
fn prof_stamp(prof: &Option<ProfHandle>) -> Option<prof::Stamp> {
    prof.as_ref().and_then(ProfHandle::stamp)
}

/// Closes a manual stage span opened by [`prof_stamp`].
fn prof_record(prof: &mut Option<ProfHandle>, stage: Stage, stamp: Option<prof::Stamp>) {
    if let (Some(h), Some(t0)) = (prof.as_mut(), stamp) {
        h.record_since(stage, t0);
    }
}

// ---------------------------------------------------------------------
// Shard-side worker.
// ---------------------------------------------------------------------

/// Messages from the inlet to one shard worker.
#[derive(Debug)]
enum ShardMsg {
    /// A key-partitioned event batch, in ingestion order.
    Batch(Vec<Event>),
    /// A key-partitioned batch tagged with global inlet sequence
    /// numbers, sent instead of [`ShardMsg::Batch`] while count-query
    /// filters are installed (the tags let the collector replay
    /// forwarded events in global ingest order).
    SeqBatch(Vec<(u64, Event)>),
    /// Advance event time (punctuation-seals idle spans); the worker
    /// acknowledges with a frontier item.
    Watermark(Timestamp),
    /// Remove a query at runtime.
    Remove { id: QueryId, immediate: bool },
    /// Add a query-group at runtime: one more slicer on this shard.
    AddGroup(QueryGroup),
    /// Install a count-query filter: forward events matching any of the
    /// predicates to the collector's replay slot.
    AddCountFilter(usize, Vec<Predicate>),
    /// Enable causal tracing: mint one recorder per slicer for `node`.
    Install(TraceCollector, u32),
    /// End of stream: report metrics and exit cleanly.
    Flush,
    /// Test-only: make the worker panic, exercising the degraded-shard
    /// path without a contrived data-dependent panic.
    #[cfg(test)]
    Panic,
}

/// Items a shard worker hands to the collector.
#[derive(Debug)]
enum ShardItem {
    /// Sealed slices of one sharded group (index into the sharded
    /// group list).
    Slices {
        group: usize,
        slices: Vec<SealedSlice>,
    },
    /// Per-session-query clear frontiers of one unfixed group, reported
    /// at every watermark (floor = the watermark) and at flush
    /// (floor = `Timestamp::MAX`): no session fragment starting before
    /// its query's clear can still arrive from this shard.
    Clears {
        group: usize,
        clears: Vec<(usize, Timestamp)>,
    },
    /// Events matching a count query's selections, tagged with inlet
    /// sequence numbers, for the collector's replay slot.
    CountEvents {
        replay: usize,
        items: Vec<(u64, Event)>,
    },
    /// The shard has processed every event up to this watermark.
    Frontier(Timestamp),
    /// Final per-shard metrics, sent right before a clean exit.
    Done {
        metrics: EngineMetrics,
        late_dropped: u64,
    },
}

/// Feeds a run of in-order events through every slicer of the shard and
/// pushes the sealed slices, one item per group.
///
/// Marker events are broadcast by the inlet so every shard closes
/// user-defined windows at the same stream position: a marker whose key
/// hashes to *another* shard drives only the window *boundaries* of
/// unfixed groups ([`GroupSlicer::on_marker`]) — its data belongs to the
/// owning shard, which processes it as an ordinary event.
fn feed_events(
    shard: usize,
    shards_total: usize,
    slicers: &mut [GroupSlicer],
    outs: &mut Vec<Vec<SealedSlice>>,
    guard: &InboxGuard<ShardItem>,
    events: &[Event],
) {
    outs.resize_with(slicers.len(), Vec::new);
    let foreign_marker = events
        .iter()
        .any(|ev| ev.marker.is_some() && (ev.key as usize) % shards_total != shard);
    if foreign_marker {
        for ev in events {
            let owned = ev.marker.is_none() || (ev.key as usize) % shards_total == shard;
            for (group, slicer) in slicers.iter_mut().enumerate() {
                if owned {
                    slicer.on_event(ev, &mut outs[group]);
                } else if slicer.group().has_unfixed_windows() {
                    slicer.on_marker(ev, &mut outs[group]);
                }
            }
        }
    } else {
        for (group, slicer) in slicers.iter_mut().enumerate() {
            for ev in events {
                slicer.on_event(ev, &mut outs[group]);
            }
        }
    }
    for (group, out) in outs.iter_mut().enumerate() {
        if !out.is_empty() {
            guard.push(ShardItem::Slices {
                group,
                slices: std::mem::take(out),
            });
        }
    }
}

/// Reports the clear frontiers of every unfixed group on this shard
/// (see [`ShardItem::Clears`]).
fn push_clears(slicers: &[GroupSlicer], guard: &InboxGuard<ShardItem>, floor: Timestamp) {
    for (group, slicer) in slicers.iter().enumerate() {
        if slicer.group().has_unfixed_windows() {
            guard.push(ShardItem::Clears {
                group,
                clears: slicer.unfixed_clears(floor),
            });
        }
    }
}

/// The shard worker loop: reorder (optional) → one slicer per sharded
/// group (+ count-query filters) → handoff inbox. Runs on its own
/// thread; panics anywhere in the loop are reported by the guard and
/// degrade only this shard.
fn run_shard(
    shard: usize,
    shards_total: usize,
    mut slicers: Vec<GroupSlicer>,
    lateness: Option<DurationMs>,
    rx: crossbeam_channel::Receiver<ShardMsg>,
    inbox: Arc<Inbox<ShardItem>>,
    profiler: Option<Profiler>,
) {
    let guard = InboxGuard::new(inbox, shard);
    let mut prof = profiler.map(|p| p.handle(&format!("shard{shard}")));
    let mut reorder = lateness.map(ReorderBuffer::new);
    let mut ordered: Vec<Event> = Vec::new();
    let mut scratch: Vec<SealedSlice> = Vec::new();
    let mut outs: Vec<Vec<SealedSlice>> = Vec::new();
    let mut count_filters: Vec<(usize, Vec<Predicate>)> = Vec::new();
    loop {
        let msg = {
            let _idle = prof::scope(&mut prof, Stage::Idle);
            match rx.recv() {
                Ok(msg) => msg,
                Err(_) => break,
            }
        };
        let batch: Option<Vec<Event>> = match msg {
            ShardMsg::Batch(events) => Some(events),
            ShardMsg::SeqBatch(items) => {
                // Count windows advance only on selection matches, so
                // forwarding just the matching events (in sequence
                // order) is result-preserving. Broadcast markers are
                // forwarded by their owning shard only.
                let _filter = prof::scope(&mut prof, Stage::CountFilter);
                for (replay, predicates) in &count_filters {
                    let matched: Vec<(u64, Event)> = items
                        .iter()
                        .filter(|(_, ev)| {
                            (ev.marker.is_none() || (ev.key as usize) % shards_total == shard)
                                && predicates.iter().any(|p| p.matches(ev))
                        })
                        .copied()
                        .collect();
                    if !matched.is_empty() {
                        guard.push(ShardItem::CountEvents {
                            replay: *replay,
                            items: matched,
                        });
                    }
                }
                Some(items.into_iter().map(|(_, ev)| ev).collect())
            }
            ShardMsg::Watermark(ts) => {
                if let Some(rb) = &mut reorder {
                    {
                        let _reorder = prof::scope(&mut prof, Stage::Reorder);
                        rb.advance(ts, &mut ordered);
                    }
                    let _slice = prof::scope(&mut prof, Stage::Slicer);
                    feed_events(
                        shard,
                        shards_total,
                        &mut slicers,
                        &mut outs,
                        &guard,
                        &ordered,
                    );
                    ordered.clear();
                }
                let _slice = prof::scope(&mut prof, Stage::Slicer);
                for (group, slicer) in slicers.iter_mut().enumerate() {
                    slicer.on_watermark(ts, &mut scratch);
                    if !scratch.is_empty() {
                        guard.push(ShardItem::Slices {
                            group,
                            slices: std::mem::take(&mut scratch),
                        });
                    }
                }
                push_clears(&slicers, &guard, ts);
                guard.push(ShardItem::Frontier(ts));
                None
            }
            ShardMsg::Remove { id, immediate } => {
                for slicer in &mut slicers {
                    slicer.remove_query(id, immediate);
                }
                None
            }
            ShardMsg::AddGroup(group) => {
                slicers.push(GroupSlicer::new(group));
                None
            }
            ShardMsg::AddCountFilter(replay, predicates) => {
                count_filters.push((replay, predicates));
                None
            }
            ShardMsg::Install(collector, node) => {
                for slicer in &mut slicers {
                    slicer.set_recorder(collector.recorder(node));
                }
                None
            }
            ShardMsg::Flush => break,
            #[cfg(test)]
            ShardMsg::Panic => std::panic::panic_any("injected shard panic"),
        };
        if let Some(events) = batch {
            if let Some(rb) = &mut reorder {
                {
                    let _reorder = prof::scope(&mut prof, Stage::Reorder);
                    for ev in events {
                        rb.push(ev, &mut ordered);
                    }
                }
                let _slice = prof::scope(&mut prof, Stage::Slicer);
                feed_events(
                    shard,
                    shards_total,
                    &mut slicers,
                    &mut outs,
                    &guard,
                    &ordered,
                );
                ordered.clear();
            } else {
                let _slice = prof::scope(&mut prof, Stage::Slicer);
                feed_events(
                    shard,
                    shards_total,
                    &mut slicers,
                    &mut outs,
                    &guard,
                    &events,
                );
            }
        }
    }
    // Events still buffered past the final watermark fold in best-effort
    // (their slices seal only if a punctuation is crossed) — the same
    // contract as draining a sequential engine without a final watermark.
    if let Some(rb) = &mut reorder {
        {
            let _reorder = prof::scope(&mut prof, Stage::Reorder);
            rb.flush(&mut ordered);
        }
        let _slice = prof::scope(&mut prof, Stage::Slicer);
        feed_events(
            shard,
            shards_total,
            &mut slicers,
            &mut outs,
            &guard,
            &ordered,
        );
        ordered.clear();
    }
    // End of stream: no slot can open another session fragment, so
    // closed session queries clear all the way out.
    push_clears(&slicers, &guard, Timestamp::MAX);
    let mut metrics = EngineMetrics::default();
    for slicer in &slicers {
        metrics.absorb(slicer.metrics());
    }
    let late_dropped = reorder.as_ref().map_or(0, ReorderBuffer::late_dropped);
    guard.push(ShardItem::Done {
        metrics,
        late_dropped,
    });
    guard.finish();
}

// ---------------------------------------------------------------------
// Collector-side merging of per-shard slices.
// ---------------------------------------------------------------------

/// Merges the per-shard partials of one shardable group back into the
/// sequential slice stream.
///
/// Fixed time windows punctuate at the same instants on every shard, so
/// per-shard slices merge by **end** timestamp (start timestamps can
/// differ when a shard saw no early events). Merged slices are released
/// strictly in end order, once either every shard contributed
/// (`coverage == shards`) or the shard frontier watermark passed the end
/// (idle shards sealed nothing for the span). This is the in-core twin
/// of the decentralized `AlignedSliceMerger` over child nodes.
#[derive(Debug)]
struct ShardMerger {
    expected_coverage: u32,
    pending: BTreeMap<Timestamp, PendingMerge>,
    next_id: SliceId,
    forced_up_to: Timestamp,
    ready: VecDeque<SealedSlice>,
    recorder: Option<TraceRecorder>,
}

#[derive(Debug)]
struct PendingMerge {
    start_ts: Timestamp,
    data: SliceData,
    coverage: u32,
    low_ts: Timestamp,
    trace: Option<crate::obs::trace::TraceId>,
}

impl ShardMerger {
    fn new(expected_coverage: u32) -> Self {
        Self {
            expected_coverage: expected_coverage.max(1),
            pending: BTreeMap::new(),
            next_id: 0,
            forced_up_to: 0,
            ready: VecDeque::new(),
            recorder: None,
        }
    }

    fn set_recorder(&mut self, recorder: TraceRecorder) {
        self.recorder = Some(recorder);
    }

    /// Folds one shard's sealed slice in. Shardable groups carry no
    /// session gaps, and fixed-window end punctuations are re-derived by
    /// the assembler, so only the partial data travels.
    fn on_slice(&mut self, partial: SealedSlice) {
        let end_ts = partial.end_ts;
        let entry = self.pending.entry(end_ts).or_insert_with(|| PendingMerge {
            start_ts: partial.start_ts,
            data: SliceData::new(partial.data.per_selection.len()),
            coverage: 0,
            low_ts: Timestamp::MAX,
            trace: None,
        });
        if entry.trace.is_none() {
            if let Some(id) = partial.trace {
                entry.trace = Some(id);
                if let Some(rec) = &mut self.recorder {
                    rec.record(id, SpanKind::MergeStart);
                }
            }
        }
        entry.start_ts = entry.start_ts.min(partial.start_ts);
        entry.data.merge(&partial.data);
        entry.coverage += 1;
        entry.low_ts = entry.low_ts.min(partial.low_watermark_ts);
        self.release();
    }

    /// Every live shard has passed `wm`: incomplete slices ending at or
    /// before it become releasable (missing shards were idle or
    /// degraded).
    fn advance(&mut self, wm: Timestamp) {
        if wm > self.forced_up_to {
            self.forced_up_to = wm;
            self.release();
        }
    }

    fn release(&mut self) {
        loop {
            let releasable = match self.pending.iter().next() {
                Some((&end_ts, entry)) => {
                    entry.coverage >= self.expected_coverage || end_ts <= self.forced_up_to
                }
                None => false,
            };
            if !releasable {
                break;
            }
            let Some((end_ts, done)) = self.pending.pop_first() else {
                break;
            };
            let id = self.next_id;
            self.next_id += 1;
            if let (Some(rec), Some(trace)) = (&mut self.recorder, done.trace) {
                rec.record(trace, SpanKind::MergeDone);
            }
            self.ready.push_back(SealedSlice {
                id,
                start_ts: done.start_ts,
                end_ts,
                data: done.data,
                ends: Vec::new(),
                session_gaps: Vec::new(),
                low_watermark: 0,
                low_watermark_ts: done.low_ts.min(end_ts),
                trace: done.trace,
            });
        }
    }

    fn drain_ready(&mut self, group: usize, out: &mut Vec<(usize, SealedSlice)>) {
        out.extend(self.ready.drain(..).map(|s| (group, s)));
    }
}

/// The per-group collector-side merger: fixed-only groups align by
/// slice-end timestamp, groups with session/user-defined windows merge
/// by span overlap and clear frontiers.
#[derive(Debug)]
enum GroupMerger {
    Fixed(ShardMerger),
    Unfixed(UnfixedShardMerger),
}

impl GroupMerger {
    fn for_group(group: &QueryGroup, shards: usize) -> Self {
        if group.has_unfixed_windows() {
            GroupMerger::Unfixed(UnfixedShardMerger::new(group, shards))
        } else {
            GroupMerger::Fixed(ShardMerger::new(shards as u32))
        }
    }

    fn on_slice(&mut self, shard: usize, slice: SealedSlice) {
        match self {
            GroupMerger::Fixed(m) => m.on_slice(slice),
            GroupMerger::Unfixed(m) => m.on_slice(shard, slice),
        }
    }

    fn on_clears(&mut self, shard: usize, clears: &[(usize, Timestamp)]) {
        if let GroupMerger::Unfixed(m) = self {
            m.on_clears(shard, clears);
        }
    }

    fn advance(&mut self, wm: Timestamp) {
        match self {
            GroupMerger::Fixed(m) => m.advance(wm),
            GroupMerger::Unfixed(m) => m.advance(wm),
        }
    }

    fn mark_dead(&mut self, shard: usize) {
        if let GroupMerger::Unfixed(m) = self {
            m.mark_dead(shard);
        }
    }

    /// Purges merger-side state of an immediately-removed query (the
    /// fixed merger keeps no per-query state).
    fn remove_query(&mut self, id: QueryId) {
        if let GroupMerger::Unfixed(m) = self {
            m.remove_query(id);
        }
    }

    fn set_recorder(&mut self, recorder: TraceRecorder) {
        match self {
            GroupMerger::Fixed(m) => m.set_recorder(recorder),
            GroupMerger::Unfixed(m) => m.set_recorder(recorder),
        }
    }

    fn drain_ready(&mut self, group: usize, out: &mut Vec<(usize, SealedSlice)>) {
        match self {
            GroupMerger::Fixed(m) => m.drain_ready(group, out),
            GroupMerger::Unfixed(m) => m.drain_ready(group, out),
        }
    }

    /// Profiler stage this merger's work is attributed to.
    fn prof_stage(&self) -> Stage {
        match self {
            GroupMerger::Fixed(_) => Stage::ShardMerge,
            GroupMerger::Unfixed(_) => Stage::UnfixedMerge,
        }
    }
}

// ---------------------------------------------------------------------
// Window assembly over merged slices, by time range.
// ---------------------------------------------------------------------

/// Assembles fixed time windows from shard-merged slices, selecting
/// slices by time range (merged slice ids are collector-local, and end
/// punctuations are derived from the specs — "Desis is able to calculate
/// window ends in advance").
#[derive(Debug)]
pub struct FixedAssembler {
    queries: Vec<FixedQuery>,
    slices: VecDeque<(Timestamp, Timestamp, SliceData)>,
    results_emitted: u64,
    merges: u64,
    recorder: Option<TraceRecorder>,
}

#[derive(Debug)]
struct FixedQuery {
    id: QueryId,
    selection: usize,
    functions: Vec<AggFunction>,
    spec: WindowSpec,
}

impl FixedAssembler {
    /// Creates an assembler for a group whose windows are all fixed time
    /// windows.
    pub fn new(group: &QueryGroup) -> Self {
        let queries = group
            .queries
            .iter()
            .filter(|cq| cq.query.window.has_precomputable_puncts())
            .map(|cq| FixedQuery {
                id: cq.query.id,
                selection: cq.selection as usize,
                functions: cq.query.functions.clone(),
                spec: cq.query.window,
            })
            .collect();
        Self {
            queries,
            slices: VecDeque::new(),
            results_emitted: 0,
            merges: 0,
            recorder: None,
        }
    }

    /// Enables causal slice tracing: traced slices that terminate
    /// windows record `WindowAssembled`/`ResultEmitted` spans.
    pub fn set_recorder(&mut self, recorder: TraceRecorder) {
        self.recorder = Some(recorder);
    }

    /// Results emitted so far.
    pub fn results_emitted(&self) -> u64 {
        self.results_emitted
    }

    /// Slice-partial merge operations performed so far.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Slices currently retained.
    pub fn retained_slices(&self) -> usize {
        self.slices.len()
    }

    /// Stops assembling windows for `query` (runtime removal).
    pub fn remove_query(&mut self, query: QueryId) -> bool {
        let before = self.queries.len();
        self.queries.retain(|q| q.id != query);
        self.queries.len() != before
    }

    /// Ingests one merged slice; assembles every window ending with it.
    pub fn on_slice(&mut self, slice: SealedSlice, out: &mut Vec<QueryResult>) {
        let low_ts = slice.low_watermark_ts;
        let slice_end = slice.end_ts;
        let trace = slice.trace;
        let before = out.len();
        self.slices
            .push_back((slice.start_ts, slice.end_ts, slice.data));
        // Windows of different queries often cover the same range; merge
        // each distinct (selection, range) once.
        let mut cache: FxHashMap<(usize, Timestamp, Timestamp), FxHashMap<Key, OperatorBundle>> =
            FxHashMap::default();
        for qi in 0..self.queries.len() {
            let (sel, start) = {
                let q = &self.queries[qi];
                match q.spec.fixed_window_ending_at(slice_end) {
                    Some(ws) => (q.selection, ws),
                    None => continue,
                }
            };
            let cache_key = (sel, start, slice_end);
            if let std::collections::hash_map::Entry::Vacant(slot) = cache.entry(cache_key) {
                let mut merged: FxHashMap<Key, OperatorBundle> = FxHashMap::default();
                for (s, e, data) in &self.slices {
                    if *s >= start && *e <= slice_end {
                        if let Some(map) = data.per_selection.get(sel) {
                            for (key, bundle) in map {
                                self.merges += 1;
                                match merged.get_mut(key) {
                                    Some(b) => b.merge(bundle),
                                    None => {
                                        merged.insert(*key, bundle.clone());
                                    }
                                }
                            }
                        }
                    }
                }
                slot.insert(merged);
            }
            let Some(merged) = cache.get(&cache_key) else {
                continue;
            };
            if merged.is_empty() {
                continue;
            }
            let q = &self.queries[qi];
            // Emit in key order so assembly output is hash-order-free
            // even before the engine's canonical drain sort.
            let mut keys: Vec<Key> = merged.keys().copied().collect();
            keys.sort_unstable();
            for key in keys {
                let bundle = &merged[&key];
                let values = q.functions.iter().map(|f| bundle.finalize(f)).collect();
                out.push(QueryResult {
                    query: q.id,
                    key,
                    window_start: start,
                    window_end: slice_end,
                    values,
                });
            }
        }
        self.results_emitted += (out.len() - before) as u64;
        if let (Some(rec), Some(id)) = (&mut self.recorder, trace) {
            if out.len() > before {
                rec.record(id, SpanKind::WindowAssembled);
                let mut queries: Vec<QueryId> = out[before..].iter().map(|r| r.query).collect();
                queries.sort_unstable();
                queries.dedup();
                for query in queries {
                    rec.record(id, SpanKind::ResultEmitted { query });
                }
            }
        }
        while let Some((_, e, _)) = self.slices.front() {
            if *e <= low_ts {
                self.slices.pop_front();
            } else {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// The sharded slicer: inlet batching, worker threads, merge-back.
// ---------------------------------------------------------------------

/// Lifecycle of one shard as seen by the collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShardState {
    Running,
    Done,
    Degraded,
}

/// Runs the slicers of a set of sharded groups (fixed time windows
/// *and* session/user-defined windows) across N worker threads,
/// partitioned by `key % shards`, and merges the per-shard sealed
/// slices back into one deterministic slice stream per group. Count
/// query-groups ride along as shard-side selection filters whose
/// matches the collector replays sequentially
/// ([`ShardedSlicer::take_count_events`]).
///
/// This is the engine-internal building block shared by
/// [`ParallelEngine`] (which assembles windows from the merged stream)
/// and the decentralized local node (which ships the merged stream to
/// its parent exactly as if one sequential slicer had produced it).
#[derive(Debug)]
pub struct ShardedSlicer {
    senders: Vec<crossbeam_channel::Sender<ShardMsg>>,
    threads: Vec<std::thread::JoinHandle<()>>,
    inbox: Arc<Inbox<ShardItem>>,
    mergers: Vec<GroupMerger>,
    frontiers: Vec<Timestamp>,
    states: Vec<ShardState>,
    inlet: EventBatch,
    batch_size: usize,
    shards: usize,
    /// Broadcast marker events to every shard (any group has
    /// user-defined windows).
    broadcast: bool,
    /// Tag batches with inlet sequence numbers (count filters are
    /// installed).
    stamp: bool,
    seq: u64,
    /// Per-replay-slot count events collected from the shard filters.
    count_buf: Vec<Vec<(u64, Event)>>,
    panics: u64,
    shard_events: Vec<u64>,
    shard_batches: Vec<u64>,
    /// Per-shard `(events, batches)` counter handles, resolved once at
    /// spawn when a registry is configured, so the inlet hot path
    /// increments live instruments without any name formatting.
    live_counters: Option<Vec<(Arc<Counter>, Arc<Counter>)>>,
    /// Collector-lane profiler handle (ingest/barrier/merge stages).
    prof: Option<ProfHandle>,
    collected: EngineMetrics,
    late_dropped: u64,
    item_buf: Vec<ShardItem>,
    finished: bool,
}

impl ShardedSlicer {
    /// Spawns `cfg.shards` worker threads, each owning one slicer per
    /// group in `groups` (fixed-window groups merge by slice end,
    /// session/user-defined groups by span overlap).
    pub fn new(groups: &[QueryGroup], cfg: &ParallelConfig) -> Result<Self, DesisError> {
        Self::with_counts(groups, &[], cfg)
    }

    /// Like [`ShardedSlicer::new`], additionally installing one
    /// shard-side selection filter per count query-group: matching
    /// events come back through [`ShardedSlicer::take_count_events`]
    /// tagged with inlet sequence numbers for ordered replay.
    pub fn with_counts(
        groups: &[QueryGroup],
        count_groups: &[QueryGroup],
        cfg: &ParallelConfig,
    ) -> Result<Self, DesisError> {
        let shards = cfg.shards.max(1);
        let inbox = Arc::new(Inbox::new(shards));
        let mut senders = Vec::with_capacity(shards);
        let mut threads = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = crossbeam_channel::bounded(cfg.channel_capacity.max(1));
            let slicers: Vec<GroupSlicer> =
                groups.iter().map(|g| GroupSlicer::new(g.clone())).collect();
            let lateness = cfg.lateness;
            let inbox = Arc::clone(&inbox);
            let profiler = cfg.profiler.clone();
            let handle = std::thread::Builder::new()
                .name(format!("desis-shard-{shard}"))
                .spawn(move || run_shard(shard, shards, slicers, lateness, rx, inbox, profiler))
                .map_err(|_| DesisError::Cluster("failed to spawn shard worker thread"))?;
            senders.push(tx);
            threads.push(handle);
        }
        let live_counters = cfg.registry.as_ref().map(|registry| {
            (0..shards)
                .map(|shard| {
                    (
                        registry.counter(&names::engine_shard_events(shard)),
                        registry.counter(&names::engine_shard_batches(shard)),
                    )
                })
                .collect()
        });
        let this = Self {
            senders,
            threads,
            inbox,
            mergers: groups
                .iter()
                .map(|g| GroupMerger::for_group(g, shards))
                .collect(),
            frontiers: vec![0; shards],
            states: vec![ShardState::Running; shards],
            inlet: EventBatch::with_capacity(cfg.batch_size.max(1)),
            batch_size: cfg.batch_size.max(1),
            shards,
            broadcast: groups.iter().any(|g| !g.user_defined_queries().is_empty()),
            stamp: !count_groups.is_empty(),
            seq: 0,
            count_buf: vec![Vec::new(); count_groups.len()],
            panics: 0,
            shard_events: vec![0; shards],
            shard_batches: vec![0; shards],
            live_counters,
            prof: cfg.profiler.as_ref().map(|p| p.handle("driver")),
            collected: EngineMetrics::default(),
            late_dropped: 0,
            item_buf: Vec::new(),
            finished: false,
        };
        for (replay, g) in count_groups.iter().enumerate() {
            let predicates: Vec<Predicate> = g.selections.iter().map(|s| s.predicate).collect();
            for tx in &this.senders {
                let _ = tx.send(ShardMsg::AddCountFilter(replay, predicates.clone()));
            }
        }
        Ok(this)
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of sharded groups.
    pub fn group_count(&self) -> usize {
        self.mergers.len()
    }

    /// Shard workers that panicked and were degraded.
    pub fn shard_panics(&self) -> u64 {
        self.panics
    }

    /// Events dropped as too late by the per-shard reorder buffers
    /// (complete only after [`ShardedSlicer::finish`]).
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Enables causal tracing: every shard worker mints per-slicer ring
    /// recorders for `node`, and the merge-back records
    /// `MergeStart`/`MergeDone` spans.
    pub fn install_tracing(&mut self, collector: &TraceCollector, node: u32) {
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::Install(collector.clone(), node));
        }
        for merger in &mut self.mergers {
            merger.set_recorder(collector.recorder(node));
        }
    }

    /// Removes a query at runtime on every shard. With `immediate` the
    /// collector-side merger state is purged too; a draining removal
    /// keeps it so in-flight windows still complete (shards report the
    /// query's slot gone once drained, which releases any remainder).
    pub fn remove_query(&mut self, id: QueryId, immediate: bool) {
        // Flush first so the removal lands between the events ingested
        // before and after this call, like the sequential engine's.
        self.flush_inlet();
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::Remove { id, immediate });
        }
        if immediate {
            for merger in &mut self.mergers {
                merger.remove_query(id);
            }
        }
    }

    /// Adds a query-group at runtime: one more slicer on every shard
    /// and a matching collector-side merger. Returns the group's index
    /// in the merged-slice stream. The group starts processing with the
    /// next ingested event (the inlet is flushed first).
    pub fn add_group(&mut self, group: QueryGroup) -> usize {
        self.flush_inlet();
        self.broadcast |= !group.user_defined_queries().is_empty();
        self.mergers
            .push(GroupMerger::for_group(&group, self.shards));
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::AddGroup(group.clone()));
        }
        self.mergers.len() - 1
    }

    /// Adds a count-query replay slot at runtime: every shard starts
    /// forwarding events matching any of `predicates`, tagged with
    /// inlet sequence numbers. Returns the replay slot index.
    pub fn add_count_filter(&mut self, predicates: Vec<Predicate>) -> usize {
        self.flush_inlet();
        self.stamp = true;
        self.count_buf.push(Vec::new());
        let replay = self.count_buf.len() - 1;
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::AddCountFilter(replay, predicates.clone()));
        }
        replay
    }

    /// Drains the count-query events forwarded for replay slot
    /// `replay`. The set is complete (for everything up to a watermark)
    /// only right after [`ShardedSlicer::on_watermark`] or
    /// [`ShardedSlicer::finish`]; sort by the sequence tag to restore
    /// global ingest order.
    pub fn take_count_events(&mut self, replay: usize) -> Vec<(u64, Event)> {
        self.collect();
        self.count_buf
            .get_mut(replay)
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Ingests one event; returns `true` when the inlet batch filled and
    /// was flushed to the shards (a natural point to drain merged
    /// slices).
    #[inline]
    pub fn on_event(&mut self, ev: &Event) -> bool {
        self.inlet.push(*ev);
        if self.inlet.len() >= self.batch_size {
            self.flush_inlet();
            return true;
        }
        false
    }

    /// Ingests a pre-built batch.
    pub fn on_batch(&mut self, batch: &EventBatch) {
        for ev in batch {
            self.inlet.push(*ev);
        }
        if self.inlet.len() >= self.batch_size {
            self.flush_inlet();
        }
    }

    /// Counts a partition sent to `shard` (both the internal tallies
    /// and, when a registry was configured, the pre-resolved live
    /// counter handles — no name formatting on this path).
    #[inline]
    fn note_send(&mut self, shard: usize, events: u64) {
        self.shard_events[shard] += events;
        self.shard_batches[shard] += 1;
        if let Some(handles) = &self.live_counters {
            handles[shard].0.add(events);
            handles[shard].1.inc();
        }
    }

    fn flush_inlet(&mut self) {
        if self.inlet.is_empty() {
            return;
        }
        let ingest = prof_stamp(&self.prof);
        self.flush_inlet_inner();
        prof_record(&mut self.prof, Stage::Ingest, ingest);
    }

    fn flush_inlet_inner(&mut self) {
        if self.stamp {
            // Count filters installed: tag every event with its global
            // inlet sequence number so the collector can restore ingest
            // order across shards. Markers still broadcast (each copy
            // keeps the original's sequence number; only the owning
            // shard forwards it to the count filters).
            let inlet =
                std::mem::replace(&mut self.inlet, EventBatch::with_capacity(self.batch_size));
            let mut parts: Vec<Vec<(u64, Event)>> = vec![Vec::new(); self.shards];
            for ev in &inlet {
                let seq = self.seq;
                self.seq += 1;
                if self.broadcast && ev.marker.is_some() {
                    for part in &mut parts {
                        part.push((seq, *ev));
                    }
                } else {
                    parts[ev.key as usize % self.shards].push((seq, *ev));
                }
            }
            for (shard, part) in parts.into_iter().enumerate() {
                if part.is_empty() {
                    continue;
                }
                self.note_send(shard, part.len() as u64);
                let _ = self.senders[shard].send(ShardMsg::SeqBatch(part));
            }
            return;
        }
        if self.broadcast {
            // User-defined windows close at markers, which every shard
            // must observe at the same stream position: copy marker
            // events into every part, in place.
            let inlet =
                std::mem::replace(&mut self.inlet, EventBatch::with_capacity(self.batch_size));
            let mut parts: Vec<Vec<Event>> = vec![Vec::new(); self.shards];
            for ev in &inlet {
                if ev.marker.is_some() {
                    for part in &mut parts {
                        part.push(*ev);
                    }
                } else {
                    parts[ev.key as usize % self.shards].push(*ev);
                }
            }
            for (shard, part) in parts.into_iter().enumerate() {
                if part.is_empty() {
                    continue;
                }
                self.note_send(shard, part.len() as u64);
                let _ = self.senders[shard].send(ShardMsg::Batch(part));
            }
            return;
        }
        let parts = self.inlet.partition_by_key(self.shards);
        self.inlet = EventBatch::with_capacity(self.batch_size);
        for (shard, part) in parts.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            self.note_send(shard, part.len() as u64);
            // A failed send means the worker died; the panic surfaces
            // through the inbox guard on the next collect.
            let _ = self.senders[shard].send(ShardMsg::Batch(part));
        }
    }

    /// Flushes the inlet and broadcasts a watermark, then **blocks**
    /// until every live shard acknowledged it — the barrier that makes
    /// results deterministic: after this returns, everything implied by
    /// the events and watermarks ingested so far is in the mergers.
    pub fn on_watermark(&mut self, ts: Timestamp) {
        self.flush_inlet();
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::Watermark(ts));
        }
        let barrier = prof_stamp(&self.prof);
        loop {
            self.collect();
            let reached = self
                .states
                .iter()
                .zip(&self.frontiers)
                .all(|(state, frontier)| *state != ShardState::Running || *frontier >= ts);
            if reached {
                break;
            }
            std::thread::yield_now();
        }
        prof_record(&mut self.prof, Stage::Barrier, barrier);
    }

    /// Drains handoff items from every shard into the mergers and
    /// advances the mergers' forced watermark to the minimum live shard
    /// frontier.
    fn collect(&mut self) {
        for shard in 0..self.shards {
            let exit = self.inbox.drain(shard, &mut self.item_buf);
            for item in self.item_buf.drain(..) {
                match item {
                    ShardItem::Slices { group, slices } => {
                        if let Some(merger) = self.mergers.get_mut(group) {
                            let stage = merger.prof_stage();
                            let t0 = prof_stamp(&self.prof);
                            for slice in slices {
                                merger.on_slice(shard, slice);
                            }
                            prof_record(&mut self.prof, stage, t0);
                        }
                    }
                    ShardItem::Clears { group, clears } => {
                        if let Some(merger) = self.mergers.get_mut(group) {
                            merger.on_clears(shard, &clears);
                        }
                    }
                    ShardItem::CountEvents { replay, items } => {
                        if let Some(buf) = self.count_buf.get_mut(replay) {
                            buf.extend(items);
                        }
                    }
                    ShardItem::Frontier(ts) => {
                        if ts > self.frontiers[shard] {
                            self.frontiers[shard] = ts;
                        }
                    }
                    ShardItem::Done {
                        metrics,
                        late_dropped,
                    } => {
                        self.collected.absorb(&metrics);
                        self.late_dropped += late_dropped;
                    }
                }
            }
            if self.states[shard] == ShardState::Running {
                match exit {
                    Some(ShardExit::Clean) => self.states[shard] = ShardState::Done,
                    Some(ShardExit::Panicked) => {
                        // Degrade: stop waiting for the shard; later
                        // slices release without its contributions.
                        self.states[shard] = ShardState::Degraded;
                        self.frontiers[shard] = Timestamp::MAX;
                        self.panics += 1;
                        for merger in &mut self.mergers {
                            merger.mark_dead(shard);
                        }
                    }
                    None => {}
                }
            }
        }
        let wm = self
            .states
            .iter()
            .zip(&self.frontiers)
            .filter(|(state, _)| **state != ShardState::Degraded)
            .map(|(_, frontier)| *frontier)
            .min()
            .unwrap_or(Timestamp::MAX);
        for merger in &mut self.mergers {
            let stage = merger.prof_stage();
            let t0 = prof_stamp(&self.prof);
            merger.advance(wm);
            prof_record(&mut self.prof, stage, t0);
        }
    }

    /// Drains merged slices, tagged with their group index, in
    /// end-timestamp order per group.
    pub fn drain_merged(&mut self, out: &mut Vec<(usize, SealedSlice)>) {
        self.collect();
        for group in 0..self.mergers.len() {
            self.mergers[group].drain_ready(group, out);
        }
    }

    /// Ends the stream: flushes the inlet, tells every worker to exit,
    /// joins the threads, and collects their final metrics. Idempotent.
    /// Slices still pending afterwards were never covered by a watermark
    /// and stay unreleased (the sequential engine would not have sealed
    /// them everywhere either).
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.flush_inlet();
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::Flush);
        }
        for handle in self.threads.drain(..) {
            // A panicked worker already reported through the guard.
            let _ = handle.join();
        }
        self.collect();
        if let Some(h) = &mut self.prof {
            h.flush();
        }
    }

    /// Test-only: makes one shard worker panic, exercising the
    /// degraded-shard path end to end.
    #[cfg(test)]
    pub(crate) fn inject_panic(&self, shard: usize) {
        if let Some(tx) = self.senders.get(shard) {
            let _ = tx.send(ShardMsg::Panic);
        }
    }

    /// Summed slicer metrics of all shards, available in full after
    /// [`ShardedSlicer::finish`] (workers report on exit). The `events`
    /// field counts per-group ingests, like [`GroupSlicer::metrics`].
    pub fn metrics(&self) -> EngineMetrics {
        self.collected.clone()
    }

    /// Publishes per-shard inlet counters, the panic count, and the
    /// shard-balance telemetry gauges (routing imbalance, inbox
    /// high-water depths, unfixed-merger retained state) into
    /// `registry`.
    pub fn publish(&self, registry: &MetricsRegistry) {
        for shard in 0..self.shards {
            registry
                .counter(&names::engine_shard_events(shard))
                .raise_to(self.shard_events[shard]);
            registry
                .counter(&names::engine_shard_batches(shard))
                .raise_to(self.shard_batches[shard]);
            registry
                .gauge(&names::engine_shard_inbox_depth_max(shard))
                .set_max(self.inbox.depth_max(shard) as i64);
        }
        registry
            .counter(names::ENGINE_SHARD_PANICS)
            .raise_to(self.panics);
        let max = self.shard_events.iter().copied().max().unwrap_or(0);
        let min = self.shard_events.iter().copied().min().unwrap_or(0);
        let imbalance = ((max - min) * 1000).checked_div(max).unwrap_or(0);
        registry
            .gauge(names::ENGINE_SHARD_IMBALANCE_PERMILLE)
            .set(imbalance as i64);
        let mut pending_sessions = 0usize;
        let mut queued_ud = 0usize;
        for merger in &self.mergers {
            if let GroupMerger::Unfixed(m) = merger {
                pending_sessions += m.pending_sessions();
                queued_ud += m.queued_ud_slices();
            }
        }
        registry
            .gauge(names::ENGINE_UNFIXED_PENDING_SESSIONS)
            .set(pending_sessions as i64);
        registry
            .gauge(names::ENGINE_UNFIXED_QUEUED_UD_SLICES)
            .set(queued_ud as i64);
        let survivors: usize = self.count_buf.iter().map(Vec::len).sum();
        registry
            .gauge(names::ENGINE_UNFIXED_COUNT_SURVIVORS)
            .set(survivors as i64);
    }
}

impl Drop for ShardedSlicer {
    fn drop(&mut self) {
        self.finish();
    }
}

// ---------------------------------------------------------------------
// The parallel engine facade.
// ---------------------------------------------------------------------

/// Collector-side assembler of one sharded group's merged slice stream.
#[derive(Debug)]
enum MergedAssembler {
    /// Fixed time windows: range-select assembly over merged slices.
    Fixed(FixedAssembler),
    /// Session/user-defined windows: the unfixed merger emits
    /// self-contained per-window slices that the ordinary assembler
    /// consumes unchanged.
    Unfixed(Assembler),
}

impl MergedAssembler {
    fn on_slice(&mut self, slice: SealedSlice, out: &mut Vec<QueryResult>) {
        match self {
            MergedAssembler::Fixed(a) => a.on_slice(slice, out),
            MergedAssembler::Unfixed(a) => a.on_slice(slice, out),
        }
    }

    /// Stops emission for a removed query. Only the fixed assembler
    /// acts: it derives window ends from the specs itself, while the
    /// unfixed path is governed by slicer/merger-side removal (so a
    /// draining removal still emits in-flight windows, like the
    /// sequential engine).
    fn remove_query(&mut self, id: QueryId) {
        if let MergedAssembler::Fixed(a) = self {
            a.remove_query(id);
        }
    }

    fn set_recorder(&mut self, recorder: TraceRecorder) {
        match self {
            MergedAssembler::Fixed(a) => a.set_recorder(recorder),
            MergedAssembler::Unfixed(a) => a.set_recorder(recorder),
        }
    }

    fn results_emitted(&self) -> u64 {
        match self {
            MergedAssembler::Fixed(a) => a.results_emitted(),
            MergedAssembler::Unfixed(a) => a.results_emitted(),
        }
    }

    fn merges(&self) -> u64 {
        match self {
            MergedAssembler::Fixed(a) => a.merges(),
            MergedAssembler::Unfixed(a) => a.merges(),
        }
    }
}

/// A count-measured query-group, replayed sequentially at the
/// collector: the shard-side filters forward only selection-matching
/// events (count windows advance on matches only, so the filter is
/// result-preserving), and this pipeline consumes them in global ingest
/// order at every watermark barrier.
#[derive(Debug)]
struct CountReplay {
    slicer: GroupSlicer,
    assembler: Assembler,
    reorder: Option<ReorderBuffer>,
}

/// Key-sharded parallel twin of [`super::AggregationEngine`]: same
/// queries, same results, N slicer threads (see the module docs for the
/// sharding model and determinism argument).
///
/// ```
/// use desis_core::prelude::*;
///
/// let queries = vec![
///     Query::new(1, WindowSpec::tumbling_time(1_000)?, AggFunction::Max),
///     Query::new(2, WindowSpec::sliding_time(2_000, 500)?, AggFunction::Quantile(0.9)),
/// ];
/// let mut engine = ParallelEngine::new(queries, 4)?;
/// for ts in 0..5_000u64 {
///     engine.on_event(&Event::new(ts, (ts % 10) as u32, (ts % 97) as f64));
/// }
/// engine.on_watermark(10_000);
/// let results = engine.drain_results();
/// assert!(!results.is_empty());
/// // Results arrive in canonical (query, window end, key) order.
/// assert!(results.windows(2).all(|w| w[0].emit_order() <= w[1].emit_order()));
/// # Ok::<(), desis_core::DesisError>(())
/// ```
#[derive(Debug)]
pub struct ParallelEngine {
    sharded: Option<ShardedSlicer>,
    assemblers: Vec<MergedAssembler>,
    replays: Vec<CountReplay>,
    ordered: Vec<Event>,
    scratch: Vec<SealedSlice>,
    merged: Vec<(usize, SealedSlice)>,
    results: Vec<QueryResult>,
    registry: Arc<MetricsRegistry>,
    events: u64,
    cfg: ParallelConfig,
    query_ids: Vec<QueryId>,
    next_group_id: crate::engine::GroupId,
}

impl ParallelEngine {
    /// Builds a parallel engine with `shards` worker threads.
    pub fn new(queries: Vec<Query>, shards: usize) -> Result<Self, DesisError> {
        Self::with_config(queries, ParallelConfig::new(shards))
    }

    /// Builds a parallel engine with explicit tunables.
    pub fn with_config(queries: Vec<Query>, cfg: ParallelConfig) -> Result<Self, DesisError> {
        Self::with_registry(queries, cfg, Arc::new(MetricsRegistry::new()))
    }

    /// Builds a parallel engine publishing observability into `registry`.
    pub fn with_registry(
        queries: Vec<Query>,
        mut cfg: ParallelConfig,
        registry: Arc<MetricsRegistry>,
    ) -> Result<Self, DesisError> {
        cfg.shards = cfg.shards.max(1);
        // Resolve per-shard live counter handles at spawn (see
        // [`ShardedSlicer::publish`] / `note_send`).
        cfg.registry = Some(Arc::clone(&registry));
        let query_ids: Vec<QueryId> = queries.iter().map(|q| q.id).collect();
        // Query analysis is driver-lane work that happens before the
        // sharded slicer (and its profiler handle) exists; a transient
        // handle attributes it and merges additively into the lane.
        let mut boot = cfg.profiler.as_ref().map(|p| p.handle("driver"));
        let analyzer_t0 = prof_stamp(&boot);
        // Partition *queries* before analysis: a single session query
        // sharing a predicate with ten fixed-window queries would
        // otherwise drag the whole group through the (costlier) unfixed
        // merge. Splitting trades the cross-type slice sharing between
        // the sets (only ever present within one predicate-group) for
        // the cheapest merge path per window class.
        let (fixed, rest): (Vec<_>, Vec<_>) = queries
            .into_iter()
            .partition(|q| q.window.has_precomputable_puncts());
        let (unfixed, counts): (Vec<_>, Vec<_>) = rest.into_iter().partition(|q| {
            matches!(
                q.window.kind,
                WindowKind::Session { .. } | WindowKind::UserDefined { .. }
            )
        });
        let analyzer = QueryAnalyzer::default();
        let analyze = |qs: Vec<Query>| -> Result<Vec<QueryGroup>, DesisError> {
            if qs.is_empty() {
                Ok(Vec::new())
            } else {
                analyzer.analyze(qs)
            }
        };
        let mut sharded_groups = analyze(fixed)?;
        let mut unfixed_groups = analyze(unfixed)?;
        let mut count_groups = analyze(counts)?;
        debug_assert!(sharded_groups.iter().all(group_is_shardable));
        // Re-number the later analyses so group ids stay unique.
        let mut next_group_id = sharded_groups.len() as crate::engine::GroupId;
        for g in unfixed_groups.iter_mut().chain(count_groups.iter_mut()) {
            g.id = next_group_id;
            next_group_id += 1;
        }
        sharded_groups.append(&mut unfixed_groups);
        prof_record(&mut boot, Stage::Analyzer, analyzer_t0);
        drop(boot);
        let assemblers: Vec<MergedAssembler> = sharded_groups
            .iter()
            .map(|g| {
                if g.has_unfixed_windows() {
                    MergedAssembler::Unfixed(Assembler::with_registry(g, Arc::clone(&registry)))
                } else {
                    MergedAssembler::Fixed(FixedAssembler::new(g))
                }
            })
            .collect();
        let sharded = if sharded_groups.is_empty() && count_groups.is_empty() {
            None
        } else {
            Some(ShardedSlicer::with_counts(
                &sharded_groups,
                &count_groups,
                &cfg,
            )?)
        };
        let replays = count_groups
            .into_iter()
            .map(|g| CountReplay {
                assembler: Assembler::with_registry(&g, Arc::clone(&registry)),
                reorder: cfg.lateness.map(ReorderBuffer::new),
                slicer: GroupSlicer::new(g),
            })
            .collect();
        Ok(Self {
            sharded,
            assemblers,
            replays,
            ordered: Vec::new(),
            scratch: Vec::new(),
            merged: Vec::new(),
            results: Vec::new(),
            registry,
            events: 0,
            cfg,
            query_ids,
            next_group_id,
        })
    }

    /// Worker shard count.
    pub fn shards(&self) -> usize {
        self.cfg.shards
    }

    /// Number of query-groups (sharded + count replays).
    pub fn group_count(&self) -> usize {
        self.assemblers.len() + self.replays.len()
    }

    /// The engine's observability registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Shard workers that panicked and were degraded.
    pub fn shard_panics(&self) -> u64 {
        self.sharded.as_ref().map_or(0, ShardedSlicer::shard_panics)
    }

    /// Events dropped as too late across the sharded reorder buffers
    /// and the count replays' buffers (0 when no lateness is
    /// configured).
    pub fn late_dropped(&self) -> u64 {
        let sharded = self.sharded.as_ref().map_or(0, ShardedSlicer::late_dropped);
        let replays: u64 = self
            .replays
            .iter()
            .filter_map(|r| r.reorder.as_ref())
            .map(ReorderBuffer::late_dropped)
            .sum();
        sharded + replays
    }

    /// Enables causal slice tracing on every shard worker and the
    /// merge-back/assembly path; `node` keys the ring buffers.
    pub fn install_tracing(&mut self, collector: &TraceCollector, node: u32) {
        if let Some(sharded) = &mut self.sharded {
            sharded.install_tracing(collector, node);
        }
        for assembler in &mut self.assemblers {
            assembler.set_recorder(collector.recorder(node));
        }
        for replay in &mut self.replays {
            replay.slicer.set_recorder(collector.recorder(node));
            replay.assembler.set_recorder(collector.recorder(node));
        }
    }

    /// Ingests one event (batched internally; see
    /// [`ParallelEngine::on_batch`] for amortized ingestion).
    #[inline]
    pub fn on_event(&mut self, ev: &Event) {
        self.events += 1;
        if let Some(sharded) = &mut self.sharded {
            if sharded.on_event(ev) {
                self.collect_ready();
            }
        }
    }

    /// Ingests a batch of events.
    pub fn on_batch(&mut self, batch: &EventBatch) {
        self.events += batch.len() as u64;
        if let Some(sharded) = &mut self.sharded {
            sharded.on_batch(batch);
        }
        self.collect_ready();
    }

    /// Advances event time. This is a **barrier**: it returns once every
    /// live shard has processed the watermark, so a subsequent
    /// [`ParallelEngine::drain_results`] is deterministic.
    pub fn on_watermark(&mut self, ts: Timestamp) {
        if let Some(sharded) = &mut self.sharded {
            sharded.on_watermark(ts);
        }
        self.replay_counts(Some(ts));
        self.collect_ready();
    }

    /// Replays the count-query events forwarded by the shard filters.
    /// Called only at watermark barriers (`wm = Some(ts)`) and at finish
    /// (`wm = None`), when the forwarded set is complete; the inlet
    /// sequence tags restore global ingest order across shards.
    fn replay_counts(&mut self, wm: Option<Timestamp>) {
        if self.replays.is_empty() {
            return;
        }
        let Some(sharded) = &mut self.sharded else {
            return;
        };
        // Replay is driver-lane self-time; the merge spans recorded by
        // `take_count_events → collect` on the same handle are nested
        // and subtract out.
        let replay_t0 = prof_stamp(&sharded.prof);
        for (idx, replay) in self.replays.iter_mut().enumerate() {
            let mut items = sharded.take_count_events(idx);
            items.sort_unstable_by_key(|(seq, _)| *seq);
            match &mut replay.reorder {
                Some(rb) => {
                    for (_, ev) in &items {
                        rb.push(*ev, &mut self.ordered);
                    }
                    match wm {
                        Some(ts) => rb.advance(ts, &mut self.ordered),
                        // End of stream: release everything, like the
                        // shard workers flushing their buffers.
                        None => rb.flush(&mut self.ordered),
                    }
                }
                None => self.ordered.extend(items.iter().map(|(_, ev)| *ev)),
            }
            for i in 0..self.ordered.len() {
                let ev = self.ordered[i];
                replay.slicer.on_event(&ev, &mut self.scratch);
                for slice in self.scratch.drain(..) {
                    replay.assembler.on_slice(slice, &mut self.results);
                }
            }
            self.ordered.clear();
            if let Some(ts) = wm {
                replay.slicer.on_watermark(ts, &mut self.scratch);
                for slice in self.scratch.drain(..) {
                    replay.assembler.on_slice(slice, &mut self.results);
                }
            }
        }
        prof_record(&mut sharded.prof, Stage::Replay, replay_t0);
    }

    fn collect_ready(&mut self) {
        let Some(sharded) = &mut self.sharded else {
            return;
        };
        sharded.drain_merged(&mut self.merged);
        if self.merged.is_empty() {
            return;
        }
        let t0 = prof_stamp(&sharded.prof);
        for (group, slice) in self.merged.drain(..) {
            if let Some(assembler) = self.assemblers.get_mut(group) {
                assembler.on_slice(slice, &mut self.results);
            }
        }
        prof_record(&mut sharded.prof, Stage::Assemble, t0);
    }

    /// Takes all results produced since the last drain, in canonical
    /// `(query, window end, key, window start)` order.
    pub fn drain_results(&mut self) -> Vec<QueryResult> {
        self.collect_ready();
        let mut out = std::mem::take(&mut self.results);
        let t0 = self.sharded.as_ref().and_then(|s| prof_stamp(&s.prof));
        crate::query::sort_results(&mut out);
        if let Some(sharded) = &mut self.sharded {
            prof_record(&mut sharded.prof, Stage::Drain, t0);
            // A drain typically follows `finish` (which already flushed
            // the driver handle), so push this span through eagerly.
            if let Some(h) = &mut sharded.prof {
                h.flush();
            }
        }
        out
    }

    /// Results produced and not yet drained.
    pub fn pending_results(&self) -> usize {
        self.results.len()
    }

    /// Removes a query at runtime on every shard and count replay, the
    /// counterpart of [`ParallelEngine::add_query`]. Same semantics as
    /// the sequential engine: `immediate` drops in-flight windows,
    /// otherwise they drain.
    pub fn remove_query(&mut self, id: QueryId, immediate: bool) {
        if let Some(sharded) = &mut self.sharded {
            sharded.remove_query(id, immediate);
        }
        for assembler in &mut self.assemblers {
            assembler.remove_query(id);
        }
        for replay in &mut self.replays {
            replay.slicer.remove_query(id, immediate);
        }
        self.query_ids.retain(|q| *q != id);
    }

    /// Adds a query at runtime (Section 3.2), the counterpart of the
    /// sequential engine's `add_query`. The query is classified exactly
    /// like at construction — precomputable punctuations shard as a
    /// fixed group, session/user-defined windows shard behind the
    /// cross-shard unfixed merger, count windows install shard-side
    /// filters feeding a collector replay — and starts processing with
    /// the next ingested event (the inlet is flushed first, and the
    /// punctuation sets of the new group are computed from its own
    /// specs by the per-shard slicers).
    pub fn add_query(&mut self, query: Query) -> Result<(), DesisError> {
        if self.query_ids.contains(&query.id) {
            return Err(DesisError::InvalidQuery(format!(
                "duplicate query id {}",
                query.id
            )));
        }
        let id = query.id;
        let is_fixed = query.window.has_precomputable_puncts();
        let is_unfixed = matches!(
            query.window.kind,
            WindowKind::Session { .. } | WindowKind::UserDefined { .. }
        );
        let mut boot = self.cfg.profiler.as_ref().map(|p| p.handle("driver"));
        let analyzer_t0 = prof_stamp(&boot);
        let mut groups = QueryAnalyzer::default().analyze(vec![query])?;
        prof_record(&mut boot, Stage::Analyzer, analyzer_t0);
        drop(boot);
        let mut group = groups.remove(0);
        group.id = self.next_group_id;
        self.next_group_id += 1;
        if self.sharded.is_none() {
            self.sharded = Some(ShardedSlicer::with_counts(&[], &[], &self.cfg)?);
        }
        if let Some(sharded) = &mut self.sharded {
            if is_fixed || is_unfixed {
                let index = sharded.add_group(group.clone());
                debug_assert_eq!(index, self.assemblers.len());
                self.assemblers.push(if is_fixed {
                    MergedAssembler::Fixed(FixedAssembler::new(&group))
                } else {
                    MergedAssembler::Unfixed(Assembler::with_registry(
                        &group,
                        Arc::clone(&self.registry),
                    ))
                });
            } else {
                let predicates = group.selections.iter().map(|s| s.predicate).collect();
                let replay = sharded.add_count_filter(predicates);
                debug_assert_eq!(replay, self.replays.len());
                self.replays.push(CountReplay {
                    assembler: Assembler::with_registry(&group, Arc::clone(&self.registry)),
                    reorder: self.cfg.lateness.map(ReorderBuffer::new),
                    slicer: GroupSlicer::new(group),
                });
            }
        }
        self.query_ids.push(id);
        Ok(())
    }

    /// Ends the stream: joins the shard workers, replays the remaining
    /// count events, and drains what the watermarks covered. Call after
    /// a final [`ParallelEngine::on_watermark`] past the last window of
    /// interest.
    pub fn finish(&mut self) {
        if let Some(sharded) = &mut self.sharded {
            sharded.finish();
        }
        self.replay_counts(None);
        self.collect_ready();
    }

    /// Aggregated metrics over all shards and pipelines; the slicer
    /// counters of shard workers are complete after
    /// [`ParallelEngine::finish`]. Also publishes cumulative `engine.*`
    /// and per-shard counters into the registry.
    pub fn metrics(&self) -> EngineMetrics {
        let mut m = EngineMetrics::default();
        if let Some(sharded) = &self.sharded {
            m.absorb(&sharded.metrics());
            sharded.publish(&self.registry);
        }
        for assembler in &self.assemblers {
            m.results += assembler.results_emitted();
            m.merges += assembler.merges();
        }
        for replay in &self.replays {
            m.absorb(replay.slicer.metrics());
            m.results += replay.assembler.results_emitted();
            m.merges += replay.assembler.merges();
        }
        m.events = self.events;
        m.publish(&self.registry, "engine");
        if let Some(profiler) = &self.cfg.profiler {
            profiler.publish(&self.registry);
        }
        m
    }
}

/// Whether every window of the group punctuates at data-independent
/// instants (fixed time windows), making the group safe to shard by key.
fn group_is_shardable(group: &QueryGroup) -> bool {
    group
        .queries
        .iter()
        .all(|cq| cq.query.window.has_precomputable_puncts())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AggregationEngine;
    use crate::event::{Marker, MarkerKind};
    use crate::window::WindowSpec;

    fn canon(mut results: Vec<QueryResult>) -> Vec<QueryResult> {
        crate::query::sort_results(&mut results);
        results
    }

    fn run_sequential(
        queries: Vec<Query>,
        events: &[Event],
        final_wm: Timestamp,
    ) -> Vec<QueryResult> {
        let mut engine = AggregationEngine::new(queries).unwrap();
        for ev in events {
            engine.on_event(ev);
        }
        engine.on_watermark(final_wm);
        canon(engine.drain_results())
    }

    fn run_parallel(
        queries: Vec<Query>,
        events: &[Event],
        final_wm: Timestamp,
        shards: usize,
    ) -> Vec<QueryResult> {
        let mut engine = ParallelEngine::new(queries, shards).unwrap();
        for ev in events {
            engine.on_event(ev);
        }
        engine.on_watermark(final_wm);
        engine.finish();
        canon(engine.drain_results())
    }

    fn mixed_queries() -> Vec<Query> {
        vec![
            Query::new(
                1,
                WindowSpec::tumbling_time(1_000).unwrap(),
                AggFunction::Max,
            ),
            Query::new(
                2,
                WindowSpec::sliding_time(2_000, 500).unwrap(),
                AggFunction::Quantile(0.9),
            ),
            Query::new(3, WindowSpec::session(400).unwrap(), AggFunction::Median),
        ]
    }

    fn events(n: u64, keys: u32) -> Vec<Event> {
        (0..n)
            .map(|i| Event::new(i, (i as u32) % keys, (i % 97) as f64))
            .collect()
    }

    #[test]
    fn matches_sequential_with_mixed_groups() {
        let evs = events(4_000, 10);
        let seq = run_sequential(mixed_queries(), &evs, 10_000);
        for shards in [1, 2, 4] {
            let par = run_parallel(mixed_queries(), &evs, 10_000, shards);
            assert_eq!(par, seq, "shards={shards}");
        }
    }

    #[test]
    fn matches_sequential_with_fewer_keys_than_shards() {
        // Shards 2..6 see no events at all: watermark forcing must still
        // complete every merged slice.
        let evs: Vec<Event> = (0..2_000u64)
            .map(|i| Event::new(i, (i % 2) as u32, i as f64))
            .collect();
        let queries = vec![Query::new(
            1,
            WindowSpec::tumbling_time(500).unwrap(),
            AggFunction::Average,
        )];
        let seq = run_sequential(queries.clone(), &evs, 5_000);
        let par = run_parallel(queries, &evs, 5_000, 7);
        assert_eq!(par, seq);
    }

    #[test]
    fn drain_is_deterministic_at_watermark_barriers() {
        let queries = vec![
            Query::new(
                1,
                WindowSpec::tumbling_time(1_000).unwrap(),
                AggFunction::Sum,
            ),
            Query::new(
                2,
                WindowSpec::tumbling_time(1_000).unwrap(),
                AggFunction::Median,
            ),
        ];
        let run = || {
            let mut engine = ParallelEngine::new(queries.clone(), 4).unwrap();
            let mut drained: Vec<Vec<QueryResult>> = Vec::new();
            for i in 0..6_000u64 {
                engine.on_event(&Event::new(i, (i % 8) as u32, (i % 13) as f64));
                if i % 1_000 == 999 {
                    engine.on_watermark(i + 1);
                    drained.push(engine.drain_results());
                }
            }
            engine.on_watermark(10_000);
            engine.finish();
            drained.push(engine.drain_results());
            drained
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "watermark-aligned drains must be byte-identical");
        assert!(a.iter().any(|batch| !batch.is_empty()));
    }

    #[test]
    fn batched_ingestion_matches_per_event() {
        let evs = events(3_000, 5);
        let queries = vec![Query::new(
            1,
            WindowSpec::sliding_time(1_000, 250).unwrap(),
            AggFunction::Variance,
        )];
        let per_event = run_parallel(queries.clone(), &evs, 8_000, 3);
        let mut engine = ParallelEngine::new(queries, 3).unwrap();
        for chunk in evs.chunks(173) {
            engine.on_batch(&EventBatch::from(chunk.to_vec()));
        }
        engine.on_watermark(8_000);
        engine.finish();
        assert_eq!(canon(engine.drain_results()), per_event);
    }

    #[test]
    fn out_of_order_input_with_lateness_matches_sorted_sequential() {
        let mut evs: Vec<Event> = (0..2_000u64)
            .map(|i| Event::new(i, (i % 6) as u32, (i % 31) as f64))
            .collect();
        // Bounded jitter well within the lateness budget.
        for i in (0..evs.len()).step_by(7) {
            let j = (i + 3).min(evs.len() - 1);
            evs.swap(i, j);
        }
        let mut sorted = evs.clone();
        sorted.sort_by_key(|e| e.ts);
        let queries = vec![Query::new(
            1,
            WindowSpec::tumbling_time(200).unwrap(),
            AggFunction::Sum,
        )];
        let seq = run_sequential(queries.clone(), &sorted, 5_000);
        let mut cfg = ParallelConfig::new(4);
        cfg.lateness = Some(100);
        let mut engine = ParallelEngine::with_config(queries, cfg).unwrap();
        for ev in &evs {
            engine.on_event(ev);
        }
        engine.on_watermark(5_000);
        engine.finish();
        assert_eq!(canon(engine.drain_results()), seq);
    }

    #[test]
    fn metrics_cover_all_shards_and_publish() {
        let evs = events(1_000, 4);
        let mut engine = ParallelEngine::new(mixed_queries(), 2).unwrap();
        for ev in &evs {
            engine.on_event(ev);
        }
        engine.on_watermark(5_000);
        engine.finish();
        let m = engine.metrics();
        assert_eq!(m.events, 1_000);
        assert!(m.slices > 0);
        assert!(m.results > 0);
        let snap = engine.registry().snapshot();
        let shard0 = snap.counters[&names::engine_shard_events(0)];
        let shard1 = snap.counters[&names::engine_shard_events(1)];
        assert!(shard0 > 0);
        assert!(shard1 > 0);
        assert_eq!(shard0 + shard1, 1_000);
        assert_eq!(snap.counters[names::ENGINE_SHARD_PANICS], 0);
    }

    /// All four window classes at once: fixed tumbling/sliding,
    /// session, user-defined, and (filtered + unfiltered) count.
    fn full_mix_queries() -> Vec<Query> {
        let mut filtered_count =
            Query::new(5, WindowSpec::tumbling_count(64).unwrap(), AggFunction::Sum);
        filtered_count.predicate = Predicate::ValueAbove(40.0);
        vec![
            Query::new(
                1,
                WindowSpec::tumbling_time(1_000).unwrap(),
                AggFunction::Max,
            ),
            Query::new(
                2,
                WindowSpec::sliding_time(2_000, 500).unwrap(),
                AggFunction::Quantile(0.9),
            ),
            Query::new(3, WindowSpec::session(400).unwrap(), AggFunction::Median),
            Query::new(4, WindowSpec::user_defined(7), AggFunction::Average),
            filtered_count,
            Query::new(
                6,
                WindowSpec::sliding_count(100, 25).unwrap(),
                AggFunction::Count,
            ),
        ]
    }

    /// A stream with idle gaps (closing sessions mid-stream) and
    /// user-defined window markers on channel 7.
    fn gapped_marked_events(n: u64, keys: u32) -> Vec<Event> {
        (0..n)
            .map(|i| {
                let ts = i + (i / 100) * 600;
                let key = (i as u32) % keys;
                let value = (i % 97) as f64;
                match i % 500 {
                    120 => Event::with_marker(
                        ts,
                        key,
                        value,
                        Marker {
                            channel: 7,
                            kind: MarkerKind::Start,
                        },
                    ),
                    370 => Event::with_marker(
                        ts,
                        key,
                        value,
                        Marker {
                            channel: 7,
                            kind: MarkerKind::End,
                        },
                    ),
                    _ => Event::new(ts, key, value),
                }
            })
            .collect()
    }

    #[test]
    fn session_count_and_user_defined_match_sequential_inside_sharded_path() {
        let evs = gapped_marked_events(4_000, 10);
        let seq = run_sequential(full_mix_queries(), &evs, 60_000);
        for query in 1..=6 {
            assert!(
                seq.iter().any(|r| r.query == query),
                "sequential reference must exercise query {query}"
            );
        }
        for shards in [1, 2, 4, 7] {
            let par = run_parallel(full_mix_queries(), &evs, 60_000, shards);
            assert_eq!(par, seq, "shards={shards}");
        }
    }

    #[test]
    fn user_defined_windows_match_sequential_across_shards() {
        let evs = gapped_marked_events(3_000, 6);
        let queries = vec![Query::new(
            4,
            WindowSpec::user_defined(7),
            AggFunction::Average,
        )];
        let seq = run_sequential(queries.clone(), &evs, 60_000);
        assert!(!seq.is_empty());
        for shards in [1, 2, 4, 7] {
            let par = run_parallel(queries.clone(), &evs, 60_000, shards);
            assert_eq!(par, seq, "shards={shards}");
        }
    }

    #[test]
    fn count_windows_with_predicate_match_sequential() {
        let evs = events(3_000, 5);
        let mut filtered = Query::new(1, WindowSpec::tumbling_count(50).unwrap(), AggFunction::Sum);
        filtered.predicate = Predicate::ValueAbove(48.0);
        let queries = vec![
            filtered,
            Query::new(
                2,
                WindowSpec::sliding_count(80, 20).unwrap(),
                AggFunction::Median,
            ),
        ];
        let seq = run_sequential(queries.clone(), &evs, 10_000);
        assert!(!seq.is_empty());
        for shards in [1, 4, 7] {
            let par = run_parallel(queries.clone(), &evs, 10_000, shards);
            assert_eq!(par, seq, "shards={shards}");
        }
    }

    #[test]
    fn sessions_split_across_shards_merge_to_sequential_results() {
        // Two keys ping-ponging within the gap: with 2+ shards every
        // global session is made of overlapping per-shard fragments.
        let evs: Vec<Event> = (0..2_000u64)
            .map(|i| {
                let ts = i * 150 + (i / 40) * 2_000;
                Event::new(ts, (i % 2) as u32, (i % 13) as f64)
            })
            .collect();
        let queries = vec![Query::new(
            1,
            WindowSpec::session(500).unwrap(),
            AggFunction::Sum,
        )];
        let seq = run_sequential(queries.clone(), &evs, 1_000_000);
        assert!(seq.len() > 10, "stream must close many sessions");
        for shards in [1, 2, 4, 7] {
            let par = run_parallel(queries.clone(), &evs, 1_000_000, shards);
            assert_eq!(par, seq, "shards={shards}");
        }
    }

    #[test]
    fn unfixed_results_are_deterministic_at_watermark_barriers() {
        let run = || {
            let mut engine = ParallelEngine::new(full_mix_queries(), 4).unwrap();
            let evs = gapped_marked_events(4_000, 8);
            let mut drained: Vec<Vec<QueryResult>> = Vec::new();
            for (i, ev) in evs.iter().enumerate() {
                engine.on_event(ev);
                if i % 1_000 == 999 {
                    engine.on_watermark(ev.ts + 1);
                    drained.push(engine.drain_results());
                }
            }
            engine.on_watermark(60_000);
            engine.finish();
            drained.push(engine.drain_results());
            drained
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "watermark-aligned drains must be byte-identical");
        assert!(a.iter().any(|batch| !batch.is_empty()));
    }

    /// Regression: runtime admission (`add_query`) then removal
    /// mid-stream stays byte-identical to the sequential engine doing
    /// the same churn at the same stream positions.
    #[test]
    fn add_then_remove_query_mid_stream_matches_sequential() {
        let evs = gapped_marked_events(3_000, 6);
        let initial = vec![Query::new(
            1,
            WindowSpec::tumbling_time(1_000).unwrap(),
            AggFunction::Max,
        )];
        let added = || {
            vec![
                Query::new(7, WindowSpec::session(400).unwrap(), AggFunction::Sum),
                Query::new(
                    8,
                    WindowSpec::tumbling_count(40).unwrap(),
                    AggFunction::Average,
                ),
                Query::new(
                    9,
                    WindowSpec::tumbling_time(500).unwrap(),
                    AggFunction::Count,
                ),
                Query::new(10, WindowSpec::user_defined(7), AggFunction::Max),
            ]
        };
        let seq = {
            let mut engine = AggregationEngine::new(initial.clone()).unwrap();
            for ev in &evs[..1_000] {
                engine.on_event(ev);
            }
            engine.on_watermark(evs[999].ts);
            for q in added() {
                engine.add_query(q).unwrap();
            }
            for ev in &evs[1_000..2_000] {
                engine.on_event(ev);
            }
            engine.on_watermark(evs[1_999].ts);
            engine.remove_query(9, true).unwrap();
            for ev in &evs[2_000..] {
                engine.on_event(ev);
            }
            engine.on_watermark(60_000);
            canon(engine.drain_results())
        };
        assert!(seq.iter().any(|r| r.query == 7), "sessions must emit");
        assert!(seq.iter().any(|r| r.query == 8), "count windows must emit");
        assert!(seq.iter().any(|r| r.query == 10), "user-defined must emit");
        for shards in [1, 2, 4] {
            let mut engine = ParallelEngine::new(initial.clone(), shards).unwrap();
            for ev in &evs[..1_000] {
                engine.on_event(ev);
            }
            engine.on_watermark(evs[999].ts);
            for q in added() {
                engine.add_query(q).unwrap();
            }
            assert!(
                engine.add_query(added().remove(0)).is_err(),
                "duplicate query ids must be rejected"
            );
            for ev in &evs[1_000..2_000] {
                engine.on_event(ev);
            }
            engine.on_watermark(evs[1_999].ts);
            engine.remove_query(9, true);
            for ev in &evs[2_000..] {
                engine.on_event(ev);
            }
            engine.on_watermark(60_000);
            engine.finish();
            assert_eq!(canon(engine.drain_results()), seq, "shards={shards}");
        }
    }

    #[test]
    fn add_query_to_empty_engine_spawns_the_sharded_path() {
        let evs = events(2_000, 5);
        let queries = vec![
            Query::new(1, WindowSpec::tumbling_time(500).unwrap(), AggFunction::Sum),
            Query::new(2, WindowSpec::session(300).unwrap(), AggFunction::Count),
        ];
        let seq = run_sequential(queries.clone(), &evs, 10_000);
        let mut engine = ParallelEngine::new(Vec::new(), 3).unwrap();
        for q in queries {
            engine.add_query(q).unwrap();
        }
        for ev in &evs {
            engine.on_event(ev);
        }
        engine.on_watermark(10_000);
        engine.finish();
        assert_eq!(canon(engine.drain_results()), seq);
    }

    #[test]
    fn remove_query_stops_new_windows() {
        let queries = vec![
            Query::new(1, WindowSpec::tumbling_time(100).unwrap(), AggFunction::Sum),
            Query::new(
                2,
                WindowSpec::tumbling_time(100).unwrap(),
                AggFunction::Count,
            ),
        ];
        let mut engine = ParallelEngine::new(queries, 2).unwrap();
        engine.on_event(&Event::new(0, 0, 1.0));
        engine.remove_query(2, true);
        for i in 1..500u64 {
            engine.on_event(&Event::new(i, (i % 2) as u32, 1.0));
        }
        engine.on_watermark(1_000);
        engine.finish();
        let results = engine.drain_results();
        assert!(results.iter().all(|r| r.query != 2));
        assert!(results.iter().any(|r| r.query == 1));
    }

    #[test]
    fn snapshot_diff_across_shard_panic_keeps_counters_monotone() {
        let evs = events(2_000, 8);
        let mut engine = ParallelEngine::new(mixed_queries(), 2).unwrap();
        for ev in &evs[..1_000] {
            engine.on_event(ev);
        }
        engine.on_watermark(1_000);
        engine.metrics();
        let before = engine.registry().snapshot();
        engine.sharded.as_ref().unwrap().inject_panic(0);
        for ev in &evs[1_000..] {
            engine.on_event(ev);
        }
        engine.on_watermark(10_000);
        engine.finish();
        engine.metrics();
        let after = engine.registry().snapshot();
        assert_eq!(engine.shard_panics(), 1);
        // Counters stay monotone across the degradation: every
        // instrument of the earlier snapshot persists at or above its
        // level, so diffs against it never underflow.
        for (name, v) in &before.counters {
            let now = after.counters.get(name).copied().unwrap_or(0);
            assert!(now >= *v, "{name} regressed across panic: {v} -> {now}");
        }
        let diff = after.diff(&before);
        assert_eq!(diff.counters[names::ENGINE_SHARD_PANICS], 1);
        // No phantom instruments: everything the diff reports exists in
        // the later snapshot.
        for name in diff.counters.keys() {
            assert!(after.counters.contains_key(name), "phantom {name}");
        }
        for name in diff.gauges.keys() {
            assert!(after.gauges.contains_key(name), "phantom {name}");
        }
    }

    #[test]
    fn snapshot_diff_across_query_churn_tracks_gauge_levels() {
        let evs = gapped_marked_events(3_000, 6);
        let mut engine = ParallelEngine::new(full_mix_queries(), 3).unwrap();
        for ev in &evs[..1_500] {
            engine.on_event(ev);
        }
        engine.on_watermark(evs[1_499].ts);
        engine.metrics();
        let before = engine.registry().snapshot();
        engine
            .add_query(Query::new(
                9,
                WindowSpec::tumbling_time(700).unwrap(),
                AggFunction::Sum,
            ))
            .unwrap();
        engine.remove_query(3, true);
        for ev in &evs[1_500..] {
            engine.on_event(ev);
        }
        engine.on_watermark(60_000);
        engine.finish();
        engine.metrics();
        let after = engine.registry().snapshot();
        let diff = after.diff(&before);
        for (name, v) in &before.counters {
            let now = after.counters.get(name).copied().unwrap_or(0);
            assert!(now >= *v, "{name} regressed across churn: {v} -> {now}");
        }
        // Gauges report the later level, not a delta: the session query
        // was removed immediately and the stream fully drained, so the
        // retained-state gauges are back at zero regardless of what the
        // earlier snapshot held.
        assert_eq!(
            diff.gauges[names::ENGINE_UNFIXED_PENDING_SESSIONS],
            after.gauges[names::ENGINE_UNFIXED_PENDING_SESSIONS]
        );
        assert_eq!(after.gauges[names::ENGINE_UNFIXED_PENDING_SESSIONS], 0);
        assert_eq!(after.gauges[names::ENGINE_UNFIXED_QUEUED_UD_SLICES], 0);
        // The mid-stream add landed: the new query produced results and
        // the shard counters kept counting.
        assert!(diff.counters[&names::engine_shard_events(2)] > 0);
        for name in diff.counters.keys() {
            assert!(after.counters.contains_key(name), "phantom {name}");
        }
        for name in diff.gauges.keys() {
            assert!(after.gauges.contains_key(name), "phantom {name}");
        }
    }

    #[test]
    fn publish_reports_shard_balance_telemetry() {
        let evs = gapped_marked_events(3_000, 7);
        let mut engine = ParallelEngine::new(full_mix_queries(), 2).unwrap();
        for ev in &evs {
            engine.on_event(ev);
        }
        engine.on_watermark(60_000);
        engine.finish();
        engine.metrics();
        let snap = engine.registry().snapshot();
        let imbalance = snap.gauges[names::ENGINE_SHARD_IMBALANCE_PERMILLE];
        assert!(
            (0..=1000).contains(&imbalance),
            "imbalance permille out of range: {imbalance}"
        );
        // 7 keys over 2 shards: 4-vs-3 routing, so some imbalance shows.
        assert!(imbalance > 0);
        for shard in 0..2 {
            assert!(snap.gauges[&names::engine_shard_inbox_depth_max(shard)] > 0);
        }
        assert!(snap
            .gauges
            .contains_key(names::ENGINE_UNFIXED_PENDING_SESSIONS));
        assert!(snap
            .gauges
            .contains_key(names::ENGINE_UNFIXED_QUEUED_UD_SLICES));
        assert!(snap
            .gauges
            .contains_key(names::ENGINE_UNFIXED_COUNT_SURVIVORS));
    }

    #[test]
    fn profiler_attributes_driver_and_shard_stage_time() {
        let profiler = Profiler::new(prof::ProfClock::wall());
        profiler.begin();
        let mut cfg = ParallelConfig::new(2);
        cfg.profiler = Some(profiler.clone());
        let evs = gapped_marked_events(4_000, 10);
        let mut engine = ParallelEngine::with_config(full_mix_queries(), cfg).unwrap();
        for ev in &evs {
            engine.on_event(ev);
        }
        engine.on_watermark(60_000);
        engine.finish();
        let _ = engine.drain_results();
        engine.metrics();
        profiler.end();
        let report = profiler.report();
        assert!(report.wall_ns > 0);
        let lanes: Vec<&str> = report.lanes.iter().map(|l| l.lane.as_str()).collect();
        for lane in ["driver", "shard0", "shard1"] {
            assert!(lanes.contains(&lane), "missing lane {lane}: {lanes:?}");
        }
        // Nesting-aware self-time: no lane can account for more than
        // the measured wall interval.
        for lane in &report.lanes {
            assert!(
                lane.total_ns <= report.wall_ns,
                "lane {} overflows wall: {} > {}",
                lane.lane,
                lane.total_ns,
                report.wall_ns
            );
        }
        let driver = report.lanes.iter().find(|l| l.lane == "driver").unwrap();
        let stages: Vec<&str> = driver.stages.iter().map(|s| s.stage).collect();
        for required in [
            "analyzer",
            "ingest",
            "barrier",
            "shard_merge",
            "unfixed_merge",
            "replay",
            "assemble",
            "drain",
        ] {
            assert!(
                stages.contains(&required),
                "driver missing {required}: {stages:?}"
            );
        }
        let shard0 = report.lanes.iter().find(|l| l.lane == "shard0").unwrap();
        let worker: Vec<&str> = shard0.stages.iter().map(|s| s.stage).collect();
        for required in ["slicer", "count_filter", "idle"] {
            assert!(
                worker.contains(&required),
                "shard0 missing {required}: {worker:?}"
            );
        }
        // `metrics()` exported the tallies as prof.* counters.
        let snap = engine.registry().snapshot();
        assert!(snap.counters.keys().any(|k| k.starts_with("prof.driver.")));
        assert!(snap.counters.keys().any(|k| k.starts_with("prof.shard1.")));
    }

    #[test]
    fn profiling_enabled_results_match_unprofiled_run() {
        let evs = gapped_marked_events(3_000, 9);
        let plain = run_parallel(full_mix_queries(), &evs, 60_000, 3);
        let profiler = Profiler::new(prof::ProfClock::wall());
        profiler.begin();
        let mut cfg = ParallelConfig::new(3);
        cfg.profiler = Some(profiler.clone());
        let mut engine = ParallelEngine::with_config(full_mix_queries(), cfg).unwrap();
        for ev in &evs {
            engine.on_event(ev);
        }
        engine.on_watermark(60_000);
        engine.finish();
        let profiled = canon(engine.drain_results());
        profiler.end();
        assert_eq!(profiled, plain, "profiling must not perturb results");
    }

    #[test]
    fn unfixed_and_count_trace_chains_complete_across_the_sharded_path() {
        let collector = TraceCollector::new(1, 1 << 16);
        let evs = gapped_marked_events(4_000, 10);
        let mut engine = ParallelEngine::new(full_mix_queries(), 4).unwrap();
        engine.install_tracing(&collector, 0);
        for ev in &evs {
            engine.on_event(ev);
        }
        engine.on_watermark(60_000);
        engine.finish();
        let results = engine.drain_results();
        assert!(!results.is_empty());
        // Recorders flush their ring buffers on drop.
        drop(engine);
        let timeline = collector.drain_timeline();
        let mut chained: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        let mut unfixed_merges = 0;
        for chain in &timeline.chains {
            let Some(query) = chain.result_query() else {
                // Slices riding along inside a merge end mid-journey.
                continue;
            };
            let kinds: Vec<&str> = chain.events.iter().map(|e| e.kind.name()).collect();
            assert!(
                chain.is_complete(),
                "incomplete chain {} for query {query}: {kinds:?}",
                chain.trace
            );
            for pair in chain.events.windows(2) {
                assert!(
                    pair[0].at <= pair[1].at,
                    "non-monotone chain {}",
                    chain.trace
                );
            }
            if matches!(query, 3 | 4) {
                assert!(
                    kinds.contains(&"MergeStart") && kinds.contains(&"MergeDone"),
                    "query {query} chain missing unfixed merge spans: {kinds:?}"
                );
                unfixed_merges += 1;
            }
            chained.insert(query);
        }
        // Session (3), user-defined (4), and count (5, 6) queries all
        // resolve to complete provenance chains through the sharded path.
        for query in [3u64, 4, 5, 6] {
            assert!(
                chained.contains(&query),
                "no complete chain for query {query}; got {chained:?}"
            );
        }
        assert!(unfixed_merges > 0);
    }
}
