//! Key-sharded parallel engine (ROADMAP "as fast as the hardware
//! allows": sharding + batching).
//!
//! Scotty-style slicing is embarrassingly parallel across keys: slice
//! partials merge associatively and every key's events fold into exactly
//! one shard, so per-key operator states are computed in the same order
//! as a sequential engine and merging shard partials per slice
//! reconstructs the sequential slice exactly. [`ParallelEngine`]
//! hash-partitions events by `key % shards` across N worker threads,
//! each running the existing reorder→slicer pipeline, and a
//! shard-merging window assembler recombines the per-shard slice
//! partials before emission.
//!
//! **What shards.** Only *fixed time* windows
//! ([`crate::window::WindowSpec::has_precomputable_puncts`]) slice at
//! data-independent instants on every shard and therefore merge by
//! slice-end timestamp. Session, user-defined, and count windows define
//! their boundaries over the *whole* stream; queries with such windows
//! are analyzed into separate groups *pinned* to a sequential pipeline
//! fed with the full stream on the caller thread, which keeps every
//! result exact at any shard count (at the cost of the cross-type slice
//! sharing a sequential engine would get between the two sets).
//!
//! **Determinism.** Watermarks are barriers: [`ParallelEngine::on_watermark`]
//! waits until every live shard acknowledged the watermark, so the set
//! of results visible to a drain after a watermark depends only on the
//! ingested events and watermarks — never on thread scheduling. Drained
//! results are sorted into the canonical `(query, window end, key,
//! window start)` order ([`crate::query::QueryResult::emit_order`]), so
//! parallel runs are byte-reproducible.
//!
//! **Shutdown.** A shard worker that panics is *degraded*: a drop guard
//! reports the panic through the [`handoff::Inbox`], the collector stops
//! waiting for the shard, and later slices are force-released without
//! its contributions (counted by `engine.shard_panics`) — mirroring how
//! the decentralized substrate degrades lost children.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use rustc_hash::FxHashMap;

use crate::aggregate::{AggFunction, OperatorBundle};
use crate::engine::reorder::ReorderBuffer;
use crate::engine::slice::{SealedSlice, SliceData, SliceId};
use crate::engine::slicer::GroupSlicer;
use crate::engine::{Assembler, QueryAnalyzer, QueryGroup};
use crate::error::DesisError;
use crate::event::{Event, EventBatch, Key};
use crate::metrics::EngineMetrics;
use crate::obs::trace::{SpanKind, TraceCollector, TraceRecorder};
use crate::obs::{names, MetricsRegistry};
use crate::query::{Query, QueryId, QueryResult};
use crate::time::{DurationMs, Timestamp};
use crate::window::WindowSpec;

pub mod handoff;

use handoff::{Inbox, InboxGuard, ShardExit};

/// Tunables of the parallel engine.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Worker shard count (clamped to at least 1).
    pub shards: usize,
    /// Events accumulated at the inlet before a batch is sent to the
    /// shards (amortizes channel overhead).
    pub batch_size: usize,
    /// Per-shard channel capacity in batches (bounded channels give
    /// backpressure, i.e. sustainable throughput).
    pub channel_capacity: usize,
    /// Allowed out-of-orderness: `Some(l)` runs a reorder buffer of
    /// lateness `l` in front of every shard's slicers (and the pinned
    /// pipeline); `None` assumes timestamp-ordered input, like
    /// [`super::AggregationEngine`].
    pub lateness: Option<DurationMs>,
}

impl ParallelConfig {
    /// A configuration with `shards` workers and default batching.
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
            batch_size: 256,
            channel_capacity: 64,
            lateness: None,
        }
    }
}

// ---------------------------------------------------------------------
// Shard-side worker.
// ---------------------------------------------------------------------

/// Messages from the inlet to one shard worker.
#[derive(Debug)]
enum ShardMsg {
    /// A key-partitioned event batch, in ingestion order.
    Batch(Vec<Event>),
    /// Advance event time (punctuation-seals idle spans); the worker
    /// acknowledges with a frontier item.
    Watermark(Timestamp),
    /// Remove a query at runtime.
    Remove { id: QueryId, immediate: bool },
    /// Enable causal tracing: mint one recorder per slicer for `node`.
    Install(TraceCollector, u32),
    /// End of stream: report metrics and exit cleanly.
    Flush,
}

/// Items a shard worker hands to the collector.
#[derive(Debug)]
enum ShardItem {
    /// Sealed slices of one shardable group (index into the sharded
    /// group list).
    Slices {
        group: usize,
        slices: Vec<SealedSlice>,
    },
    /// The shard has processed every event up to this watermark.
    Frontier(Timestamp),
    /// Final per-shard metrics, sent right before a clean exit.
    Done {
        metrics: EngineMetrics,
        late_dropped: u64,
    },
}

/// The shard worker loop: reorder (optional) → one slicer per shardable
/// group → handoff inbox. Runs on its own thread; panics anywhere in the
/// loop are reported by the guard and degrade only this shard.
fn run_shard(
    shard: usize,
    mut slicers: Vec<GroupSlicer>,
    lateness: Option<DurationMs>,
    rx: crossbeam_channel::Receiver<ShardMsg>,
    inbox: Arc<Inbox<ShardItem>>,
) {
    let guard = InboxGuard::new(inbox, shard);
    let mut reorder = lateness.map(ReorderBuffer::new);
    let mut ordered: Vec<Event> = Vec::new();
    let mut scratch: Vec<SealedSlice> = Vec::new();
    let feed = |slicers: &mut Vec<GroupSlicer>,
                scratch: &mut Vec<SealedSlice>,
                guard: &InboxGuard<ShardItem>,
                events: &[Event]| {
        for (group, slicer) in slicers.iter_mut().enumerate() {
            for ev in events {
                slicer.on_event(ev, scratch);
            }
            if !scratch.is_empty() {
                guard.push(ShardItem::Slices {
                    group,
                    slices: std::mem::take(scratch),
                });
            }
        }
    };
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Batch(events) => {
                if let Some(rb) = &mut reorder {
                    for ev in events {
                        rb.push(ev, &mut ordered);
                    }
                    feed(&mut slicers, &mut scratch, &guard, &ordered);
                    ordered.clear();
                } else {
                    feed(&mut slicers, &mut scratch, &guard, &events);
                }
            }
            ShardMsg::Watermark(ts) => {
                if let Some(rb) = &mut reorder {
                    rb.advance(ts, &mut ordered);
                    feed(&mut slicers, &mut scratch, &guard, &ordered);
                    ordered.clear();
                }
                for (group, slicer) in slicers.iter_mut().enumerate() {
                    slicer.on_watermark(ts, &mut scratch);
                    if !scratch.is_empty() {
                        guard.push(ShardItem::Slices {
                            group,
                            slices: std::mem::take(&mut scratch),
                        });
                    }
                }
                guard.push(ShardItem::Frontier(ts));
            }
            ShardMsg::Remove { id, immediate } => {
                for slicer in &mut slicers {
                    slicer.remove_query(id, immediate);
                }
            }
            ShardMsg::Install(collector, node) => {
                for slicer in &mut slicers {
                    slicer.set_recorder(collector.recorder(node));
                }
            }
            ShardMsg::Flush => break,
        }
    }
    // Events still buffered past the final watermark fold in best-effort
    // (their slices seal only if a punctuation is crossed) — the same
    // contract as draining a sequential engine without a final watermark.
    if let Some(rb) = &mut reorder {
        rb.flush(&mut ordered);
        feed(&mut slicers, &mut scratch, &guard, &ordered);
        ordered.clear();
    }
    let mut metrics = EngineMetrics::default();
    for slicer in &slicers {
        metrics.absorb(slicer.metrics());
    }
    let late_dropped = reorder.as_ref().map_or(0, ReorderBuffer::late_dropped);
    guard.push(ShardItem::Done {
        metrics,
        late_dropped,
    });
    guard.finish();
}

// ---------------------------------------------------------------------
// Collector-side merging of per-shard slices.
// ---------------------------------------------------------------------

/// Merges the per-shard partials of one shardable group back into the
/// sequential slice stream.
///
/// Fixed time windows punctuate at the same instants on every shard, so
/// per-shard slices merge by **end** timestamp (start timestamps can
/// differ when a shard saw no early events). Merged slices are released
/// strictly in end order, once either every shard contributed
/// (`coverage == shards`) or the shard frontier watermark passed the end
/// (idle shards sealed nothing for the span). This is the in-core twin
/// of the decentralized `AlignedSliceMerger` over child nodes.
#[derive(Debug)]
struct ShardMerger {
    expected_coverage: u32,
    pending: BTreeMap<Timestamp, PendingMerge>,
    next_id: SliceId,
    forced_up_to: Timestamp,
    ready: VecDeque<SealedSlice>,
    recorder: Option<TraceRecorder>,
}

#[derive(Debug)]
struct PendingMerge {
    start_ts: Timestamp,
    data: SliceData,
    coverage: u32,
    low_ts: Timestamp,
    trace: Option<crate::obs::trace::TraceId>,
}

impl ShardMerger {
    fn new(expected_coverage: u32) -> Self {
        Self {
            expected_coverage: expected_coverage.max(1),
            pending: BTreeMap::new(),
            next_id: 0,
            forced_up_to: 0,
            ready: VecDeque::new(),
            recorder: None,
        }
    }

    fn set_recorder(&mut self, recorder: TraceRecorder) {
        self.recorder = Some(recorder);
    }

    /// Folds one shard's sealed slice in. Shardable groups carry no
    /// session gaps, and fixed-window end punctuations are re-derived by
    /// the assembler, so only the partial data travels.
    fn on_slice(&mut self, partial: SealedSlice) {
        let end_ts = partial.end_ts;
        let entry = self.pending.entry(end_ts).or_insert_with(|| PendingMerge {
            start_ts: partial.start_ts,
            data: SliceData::new(partial.data.per_selection.len()),
            coverage: 0,
            low_ts: Timestamp::MAX,
            trace: None,
        });
        if entry.trace.is_none() {
            if let Some(id) = partial.trace {
                entry.trace = Some(id);
                if let Some(rec) = &mut self.recorder {
                    rec.record(id, SpanKind::MergeStart);
                }
            }
        }
        entry.start_ts = entry.start_ts.min(partial.start_ts);
        entry.data.merge(&partial.data);
        entry.coverage += 1;
        entry.low_ts = entry.low_ts.min(partial.low_watermark_ts);
        self.release();
    }

    /// Every live shard has passed `wm`: incomplete slices ending at or
    /// before it become releasable (missing shards were idle or
    /// degraded).
    fn advance(&mut self, wm: Timestamp) {
        if wm > self.forced_up_to {
            self.forced_up_to = wm;
            self.release();
        }
    }

    fn release(&mut self) {
        loop {
            let releasable = match self.pending.iter().next() {
                Some((&end_ts, entry)) => {
                    entry.coverage >= self.expected_coverage || end_ts <= self.forced_up_to
                }
                None => false,
            };
            if !releasable {
                break;
            }
            let Some((end_ts, done)) = self.pending.pop_first() else {
                break;
            };
            let id = self.next_id;
            self.next_id += 1;
            if let (Some(rec), Some(trace)) = (&mut self.recorder, done.trace) {
                rec.record(trace, SpanKind::MergeDone);
            }
            self.ready.push_back(SealedSlice {
                id,
                start_ts: done.start_ts,
                end_ts,
                data: done.data,
                ends: Vec::new(),
                session_gaps: Vec::new(),
                low_watermark: 0,
                low_watermark_ts: done.low_ts.min(end_ts),
                trace: done.trace,
            });
        }
    }

    fn drain_ready(&mut self, group: usize, out: &mut Vec<(usize, SealedSlice)>) {
        out.extend(self.ready.drain(..).map(|s| (group, s)));
    }
}

// ---------------------------------------------------------------------
// Window assembly over merged slices, by time range.
// ---------------------------------------------------------------------

/// Assembles fixed time windows from shard-merged slices, selecting
/// slices by time range (merged slice ids are collector-local, and end
/// punctuations are derived from the specs — "Desis is able to calculate
/// window ends in advance").
#[derive(Debug)]
pub struct FixedAssembler {
    queries: Vec<FixedQuery>,
    slices: VecDeque<(Timestamp, Timestamp, SliceData)>,
    results_emitted: u64,
    merges: u64,
    recorder: Option<TraceRecorder>,
}

#[derive(Debug)]
struct FixedQuery {
    id: QueryId,
    selection: usize,
    functions: Vec<AggFunction>,
    spec: WindowSpec,
}

impl FixedAssembler {
    /// Creates an assembler for a group whose windows are all fixed time
    /// windows.
    pub fn new(group: &QueryGroup) -> Self {
        let queries = group
            .queries
            .iter()
            .filter(|cq| cq.query.window.has_precomputable_puncts())
            .map(|cq| FixedQuery {
                id: cq.query.id,
                selection: cq.selection as usize,
                functions: cq.query.functions.clone(),
                spec: cq.query.window,
            })
            .collect();
        Self {
            queries,
            slices: VecDeque::new(),
            results_emitted: 0,
            merges: 0,
            recorder: None,
        }
    }

    /// Enables causal slice tracing: traced slices that terminate
    /// windows record `WindowAssembled`/`ResultEmitted` spans.
    pub fn set_recorder(&mut self, recorder: TraceRecorder) {
        self.recorder = Some(recorder);
    }

    /// Results emitted so far.
    pub fn results_emitted(&self) -> u64 {
        self.results_emitted
    }

    /// Slice-partial merge operations performed so far.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Slices currently retained.
    pub fn retained_slices(&self) -> usize {
        self.slices.len()
    }

    /// Stops assembling windows for `query` (runtime removal).
    pub fn remove_query(&mut self, query: QueryId) -> bool {
        let before = self.queries.len();
        self.queries.retain(|q| q.id != query);
        self.queries.len() != before
    }

    /// Ingests one merged slice; assembles every window ending with it.
    pub fn on_slice(&mut self, slice: SealedSlice, out: &mut Vec<QueryResult>) {
        let low_ts = slice.low_watermark_ts;
        let slice_end = slice.end_ts;
        let trace = slice.trace;
        let before = out.len();
        self.slices
            .push_back((slice.start_ts, slice.end_ts, slice.data));
        // Windows of different queries often cover the same range; merge
        // each distinct (selection, range) once.
        let mut cache: FxHashMap<(usize, Timestamp, Timestamp), FxHashMap<Key, OperatorBundle>> =
            FxHashMap::default();
        for qi in 0..self.queries.len() {
            let (sel, start) = {
                let q = &self.queries[qi];
                match q.spec.fixed_window_ending_at(slice_end) {
                    Some(ws) => (q.selection, ws),
                    None => continue,
                }
            };
            let cache_key = (sel, start, slice_end);
            if let std::collections::hash_map::Entry::Vacant(slot) = cache.entry(cache_key) {
                let mut merged: FxHashMap<Key, OperatorBundle> = FxHashMap::default();
                for (s, e, data) in &self.slices {
                    if *s >= start && *e <= slice_end {
                        if let Some(map) = data.per_selection.get(sel) {
                            for (key, bundle) in map {
                                self.merges += 1;
                                match merged.get_mut(key) {
                                    Some(b) => b.merge(bundle),
                                    None => {
                                        merged.insert(*key, bundle.clone());
                                    }
                                }
                            }
                        }
                    }
                }
                slot.insert(merged);
            }
            let Some(merged) = cache.get(&cache_key) else {
                continue;
            };
            if merged.is_empty() {
                continue;
            }
            let q = &self.queries[qi];
            for (key, bundle) in merged {
                let values = q.functions.iter().map(|f| bundle.finalize(f)).collect();
                out.push(QueryResult {
                    query: q.id,
                    key: *key,
                    window_start: start,
                    window_end: slice_end,
                    values,
                });
            }
        }
        self.results_emitted += (out.len() - before) as u64;
        if let (Some(rec), Some(id)) = (&mut self.recorder, trace) {
            if out.len() > before {
                rec.record(id, SpanKind::WindowAssembled);
                let mut queries: Vec<QueryId> = out[before..].iter().map(|r| r.query).collect();
                queries.sort_unstable();
                queries.dedup();
                for query in queries {
                    rec.record(id, SpanKind::ResultEmitted { query });
                }
            }
        }
        while let Some((_, e, _)) = self.slices.front() {
            if *e <= low_ts {
                self.slices.pop_front();
            } else {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// The sharded slicer: inlet batching, worker threads, merge-back.
// ---------------------------------------------------------------------

/// Lifecycle of one shard as seen by the collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShardState {
    Running,
    Done,
    Degraded,
}

/// Runs the slicers of a set of *shardable* (fixed-time-window) groups
/// across N worker threads, partitioned by `key % shards`, and merges
/// the per-shard sealed slices back into one deterministic slice stream
/// per group.
///
/// This is the engine-internal building block shared by
/// [`ParallelEngine`] (which assembles windows from the merged stream)
/// and the decentralized local node (which ships the merged stream to
/// its parent exactly as if one sequential slicer had produced it).
#[derive(Debug)]
pub struct ShardedSlicer {
    senders: Vec<crossbeam_channel::Sender<ShardMsg>>,
    threads: Vec<std::thread::JoinHandle<()>>,
    inbox: Arc<Inbox<ShardItem>>,
    mergers: Vec<ShardMerger>,
    frontiers: Vec<Timestamp>,
    states: Vec<ShardState>,
    inlet: EventBatch,
    batch_size: usize,
    shards: usize,
    panics: u64,
    shard_events: Vec<u64>,
    shard_batches: Vec<u64>,
    collected: EngineMetrics,
    late_dropped: u64,
    item_buf: Vec<ShardItem>,
    finished: bool,
}

impl ShardedSlicer {
    /// Spawns `cfg.shards` worker threads, each owning one slicer per
    /// group in `groups` (which must all be shardable, i.e. fixed time
    /// windows only).
    pub fn new(groups: &[QueryGroup], cfg: &ParallelConfig) -> Result<Self, DesisError> {
        let shards = cfg.shards.max(1);
        let inbox = Arc::new(Inbox::new(shards));
        let mut senders = Vec::with_capacity(shards);
        let mut threads = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = crossbeam_channel::bounded(cfg.channel_capacity.max(1));
            let slicers: Vec<GroupSlicer> =
                groups.iter().map(|g| GroupSlicer::new(g.clone())).collect();
            let lateness = cfg.lateness;
            let inbox = Arc::clone(&inbox);
            let handle = std::thread::Builder::new()
                .name(format!("desis-shard-{shard}"))
                .spawn(move || run_shard(shard, slicers, lateness, rx, inbox))
                .map_err(|_| DesisError::Cluster("failed to spawn shard worker thread"))?;
            senders.push(tx);
            threads.push(handle);
        }
        Ok(Self {
            senders,
            threads,
            inbox,
            mergers: groups
                .iter()
                .map(|_| ShardMerger::new(shards as u32))
                .collect(),
            frontiers: vec![0; shards],
            states: vec![ShardState::Running; shards],
            inlet: EventBatch::with_capacity(cfg.batch_size.max(1)),
            batch_size: cfg.batch_size.max(1),
            shards,
            panics: 0,
            shard_events: vec![0; shards],
            shard_batches: vec![0; shards],
            collected: EngineMetrics::default(),
            late_dropped: 0,
            item_buf: Vec::new(),
            finished: false,
        })
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of sharded groups.
    pub fn group_count(&self) -> usize {
        self.mergers.len()
    }

    /// Shard workers that panicked and were degraded.
    pub fn shard_panics(&self) -> u64 {
        self.panics
    }

    /// Events dropped as too late by the per-shard reorder buffers
    /// (complete only after [`ShardedSlicer::finish`]).
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Enables causal tracing: every shard worker mints per-slicer ring
    /// recorders for `node`, and the merge-back records
    /// `MergeStart`/`MergeDone` spans.
    pub fn install_tracing(&mut self, collector: &TraceCollector, node: u32) {
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::Install(collector.clone(), node));
        }
        for merger in &mut self.mergers {
            merger.set_recorder(collector.recorder(node));
        }
    }

    /// Removes a query at runtime on every shard.
    pub fn remove_query(&mut self, id: QueryId, immediate: bool) {
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::Remove { id, immediate });
        }
    }

    /// Ingests one event; returns `true` when the inlet batch filled and
    /// was flushed to the shards (a natural point to drain merged
    /// slices).
    #[inline]
    pub fn on_event(&mut self, ev: &Event) -> bool {
        self.inlet.push(*ev);
        if self.inlet.len() >= self.batch_size {
            self.flush_inlet();
            return true;
        }
        false
    }

    /// Ingests a pre-built batch.
    pub fn on_batch(&mut self, batch: &EventBatch) {
        for ev in batch {
            self.inlet.push(*ev);
        }
        if self.inlet.len() >= self.batch_size {
            self.flush_inlet();
        }
    }

    fn flush_inlet(&mut self) {
        if self.inlet.is_empty() {
            return;
        }
        let parts = self.inlet.partition_by_key(self.shards);
        self.inlet = EventBatch::with_capacity(self.batch_size);
        for (shard, part) in parts.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            self.shard_events[shard] += part.len() as u64;
            self.shard_batches[shard] += 1;
            // A failed send means the worker died; the panic surfaces
            // through the inbox guard on the next collect.
            let _ = self.senders[shard].send(ShardMsg::Batch(part));
        }
    }

    /// Flushes the inlet and broadcasts a watermark, then **blocks**
    /// until every live shard acknowledged it — the barrier that makes
    /// results deterministic: after this returns, everything implied by
    /// the events and watermarks ingested so far is in the mergers.
    pub fn on_watermark(&mut self, ts: Timestamp) {
        self.flush_inlet();
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::Watermark(ts));
        }
        loop {
            self.collect();
            let reached = self
                .states
                .iter()
                .zip(&self.frontiers)
                .all(|(state, frontier)| *state != ShardState::Running || *frontier >= ts);
            if reached {
                break;
            }
            std::thread::yield_now();
        }
    }

    /// Drains handoff items from every shard into the mergers and
    /// advances the mergers' forced watermark to the minimum live shard
    /// frontier.
    fn collect(&mut self) {
        for shard in 0..self.shards {
            let exit = self.inbox.drain(shard, &mut self.item_buf);
            for item in self.item_buf.drain(..) {
                match item {
                    ShardItem::Slices { group, slices } => {
                        if let Some(merger) = self.mergers.get_mut(group) {
                            for slice in slices {
                                merger.on_slice(slice);
                            }
                        }
                    }
                    ShardItem::Frontier(ts) => {
                        if ts > self.frontiers[shard] {
                            self.frontiers[shard] = ts;
                        }
                    }
                    ShardItem::Done {
                        metrics,
                        late_dropped,
                    } => {
                        self.collected.absorb(&metrics);
                        self.late_dropped += late_dropped;
                    }
                }
            }
            if self.states[shard] == ShardState::Running {
                match exit {
                    Some(ShardExit::Clean) => self.states[shard] = ShardState::Done,
                    Some(ShardExit::Panicked) => {
                        // Degrade: stop waiting for the shard; later
                        // slices release without its contributions.
                        self.states[shard] = ShardState::Degraded;
                        self.frontiers[shard] = Timestamp::MAX;
                        self.panics += 1;
                    }
                    None => {}
                }
            }
        }
        let wm = self
            .states
            .iter()
            .zip(&self.frontiers)
            .filter(|(state, _)| **state != ShardState::Degraded)
            .map(|(_, frontier)| *frontier)
            .min()
            .unwrap_or(Timestamp::MAX);
        for merger in &mut self.mergers {
            merger.advance(wm);
        }
    }

    /// Drains merged slices, tagged with their group index, in
    /// end-timestamp order per group.
    pub fn drain_merged(&mut self, out: &mut Vec<(usize, SealedSlice)>) {
        self.collect();
        for group in 0..self.mergers.len() {
            self.mergers[group].drain_ready(group, out);
        }
    }

    /// Ends the stream: flushes the inlet, tells every worker to exit,
    /// joins the threads, and collects their final metrics. Idempotent.
    /// Slices still pending afterwards were never covered by a watermark
    /// and stay unreleased (the sequential engine would not have sealed
    /// them everywhere either).
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.flush_inlet();
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::Flush);
        }
        for handle in self.threads.drain(..) {
            // A panicked worker already reported through the guard.
            let _ = handle.join();
        }
        self.collect();
    }

    /// Summed slicer metrics of all shards, available in full after
    /// [`ShardedSlicer::finish`] (workers report on exit). The `events`
    /// field counts per-group ingests, like [`GroupSlicer::metrics`].
    pub fn metrics(&self) -> EngineMetrics {
        self.collected.clone()
    }

    /// Publishes per-shard inlet counters and the panic count into
    /// `registry`.
    pub fn publish(&self, registry: &MetricsRegistry) {
        for shard in 0..self.shards {
            registry
                .counter(&names::engine_shard_events(shard))
                .raise_to(self.shard_events[shard]);
            registry
                .counter(&names::engine_shard_batches(shard))
                .raise_to(self.shard_batches[shard]);
        }
        registry
            .counter(names::ENGINE_SHARD_PANICS)
            .raise_to(self.panics);
    }
}

impl Drop for ShardedSlicer {
    fn drop(&mut self) {
        self.finish();
    }
}

// ---------------------------------------------------------------------
// The parallel engine facade.
// ---------------------------------------------------------------------

/// A pinned (non-shardable) group: the existing sequential pipeline fed
/// with the full stream on the caller thread.
#[derive(Debug)]
struct PinnedPipeline {
    slicer: GroupSlicer,
    assembler: Assembler,
}

/// Key-sharded parallel twin of [`super::AggregationEngine`]: same
/// queries, same results, N slicer threads (see the module docs for the
/// sharding model and determinism argument).
///
/// ```
/// use desis_core::prelude::*;
///
/// let queries = vec![
///     Query::new(1, WindowSpec::tumbling_time(1_000)?, AggFunction::Max),
///     Query::new(2, WindowSpec::sliding_time(2_000, 500)?, AggFunction::Quantile(0.9)),
/// ];
/// let mut engine = ParallelEngine::new(queries, 4)?;
/// for ts in 0..5_000u64 {
///     engine.on_event(&Event::new(ts, (ts % 10) as u32, (ts % 97) as f64));
/// }
/// engine.on_watermark(10_000);
/// let results = engine.drain_results();
/// assert!(!results.is_empty());
/// // Results arrive in canonical (query, window end, key) order.
/// assert!(results.windows(2).all(|w| w[0].emit_order() <= w[1].emit_order()));
/// # Ok::<(), desis_core::DesisError>(())
/// ```
#[derive(Debug)]
pub struct ParallelEngine {
    sharded: Option<ShardedSlicer>,
    sharded_assemblers: Vec<FixedAssembler>,
    pinned: Vec<PinnedPipeline>,
    pinned_reorder: Option<ReorderBuffer>,
    ordered: Vec<Event>,
    scratch: Vec<SealedSlice>,
    merged: Vec<(usize, SealedSlice)>,
    results: Vec<QueryResult>,
    registry: Arc<MetricsRegistry>,
    events: u64,
    shards: usize,
}

impl ParallelEngine {
    /// Builds a parallel engine with `shards` worker threads.
    pub fn new(queries: Vec<Query>, shards: usize) -> Result<Self, DesisError> {
        Self::with_config(queries, ParallelConfig::new(shards))
    }

    /// Builds a parallel engine with explicit tunables.
    pub fn with_config(queries: Vec<Query>, cfg: ParallelConfig) -> Result<Self, DesisError> {
        Self::with_registry(queries, cfg, Arc::new(MetricsRegistry::new()))
    }

    /// Builds a parallel engine publishing observability into `registry`.
    pub fn with_registry(
        queries: Vec<Query>,
        cfg: ParallelConfig,
        registry: Arc<MetricsRegistry>,
    ) -> Result<Self, DesisError> {
        // Partition *queries* before analysis: a single session query
        // sharing a predicate with ten fixed-window queries would
        // otherwise pin the whole group sequential. Splitting trades the
        // cross-type slice sharing between the two sets (only ever
        // present within one predicate-group) for parallelism of the
        // entire fixed-window set.
        let (fixed, unfixed): (Vec<_>, Vec<_>) = queries
            .into_iter()
            .partition(|q| q.window.has_precomputable_puncts());
        let analyzer = QueryAnalyzer::default();
        let shardable = if fixed.is_empty() {
            Vec::new()
        } else {
            analyzer.analyze(fixed)?
        };
        let mut pinned_groups = if unfixed.is_empty() {
            Vec::new()
        } else {
            analyzer.analyze(unfixed)?
        };
        // Re-number the second analysis so group ids stay unique.
        let base = shardable.len() as crate::engine::GroupId;
        for (i, g) in pinned_groups.iter_mut().enumerate() {
            g.id = base + i as crate::engine::GroupId;
        }
        debug_assert!(shardable.iter().all(group_is_shardable));
        let sharded_assemblers: Vec<FixedAssembler> =
            shardable.iter().map(FixedAssembler::new).collect();
        let sharded = if shardable.is_empty() {
            None
        } else {
            Some(ShardedSlicer::new(&shardable, &cfg)?)
        };
        let pinned = pinned_groups
            .into_iter()
            .map(|g| PinnedPipeline {
                assembler: Assembler::with_registry(&g, Arc::clone(&registry)),
                slicer: GroupSlicer::new(g),
            })
            .collect();
        Ok(Self {
            sharded,
            sharded_assemblers,
            pinned,
            pinned_reorder: cfg.lateness.map(ReorderBuffer::new),
            ordered: Vec::new(),
            scratch: Vec::new(),
            merged: Vec::new(),
            results: Vec::new(),
            registry,
            events: 0,
            shards: cfg.shards.max(1),
        })
    }

    /// Worker shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of query-groups (sharded + pinned).
    pub fn group_count(&self) -> usize {
        self.sharded_assemblers.len() + self.pinned.len()
    }

    /// The engine's observability registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Shard workers that panicked and were degraded.
    pub fn shard_panics(&self) -> u64 {
        self.sharded.as_ref().map_or(0, ShardedSlicer::shard_panics)
    }

    /// Events dropped as too late across the sharded reorder buffers and
    /// the pinned pipeline's buffer (0 when no lateness is configured).
    pub fn late_dropped(&self) -> u64 {
        let sharded = self.sharded.as_ref().map_or(0, ShardedSlicer::late_dropped);
        let pinned = self
            .pinned_reorder
            .as_ref()
            .map_or(0, ReorderBuffer::late_dropped);
        sharded + pinned
    }

    /// Enables causal slice tracing on every shard worker and the
    /// merge-back/assembly path; `node` keys the ring buffers.
    pub fn install_tracing(&mut self, collector: &TraceCollector, node: u32) {
        if let Some(sharded) = &mut self.sharded {
            sharded.install_tracing(collector, node);
        }
        for assembler in &mut self.sharded_assemblers {
            assembler.set_recorder(collector.recorder(node));
        }
        for p in &mut self.pinned {
            p.slicer.set_recorder(collector.recorder(node));
        }
    }

    /// Ingests one event (batched internally; see
    /// [`ParallelEngine::on_batch`] for amortized ingestion).
    #[inline]
    pub fn on_event(&mut self, ev: &Event) {
        self.events += 1;
        self.feed_pinned(ev);
        if let Some(sharded) = &mut self.sharded {
            if sharded.on_event(ev) {
                self.collect_ready();
            }
        }
    }

    /// Ingests a batch of events.
    pub fn on_batch(&mut self, batch: &EventBatch) {
        self.events += batch.len() as u64;
        for ev in batch {
            self.feed_pinned(ev);
        }
        if let Some(sharded) = &mut self.sharded {
            sharded.on_batch(batch);
        }
        self.collect_ready();
    }

    #[inline]
    fn feed_pinned(&mut self, ev: &Event) {
        if self.pinned.is_empty() {
            return;
        }
        if let Some(rb) = &mut self.pinned_reorder {
            rb.push(*ev, &mut self.ordered);
            if self.ordered.is_empty() {
                return;
            }
            for idx in 0..self.ordered.len() {
                let ev = self.ordered[idx];
                for p in &mut self.pinned {
                    p.slicer.on_event(&ev, &mut self.scratch);
                    for slice in self.scratch.drain(..) {
                        p.assembler.on_slice(slice, &mut self.results);
                    }
                }
            }
            self.ordered.clear();
        } else {
            for p in &mut self.pinned {
                p.slicer.on_event(ev, &mut self.scratch);
                for slice in self.scratch.drain(..) {
                    p.assembler.on_slice(slice, &mut self.results);
                }
            }
        }
    }

    /// Advances event time. This is a **barrier**: it returns once every
    /// live shard has processed the watermark, so a subsequent
    /// [`ParallelEngine::drain_results`] is deterministic.
    pub fn on_watermark(&mut self, ts: Timestamp) {
        if let Some(rb) = &mut self.pinned_reorder {
            rb.advance(ts, &mut self.ordered);
            for idx in 0..self.ordered.len() {
                let ev = self.ordered[idx];
                for p in &mut self.pinned {
                    p.slicer.on_event(&ev, &mut self.scratch);
                    for slice in self.scratch.drain(..) {
                        p.assembler.on_slice(slice, &mut self.results);
                    }
                }
            }
            self.ordered.clear();
        }
        for p in &mut self.pinned {
            p.slicer.on_watermark(ts, &mut self.scratch);
            for slice in self.scratch.drain(..) {
                p.assembler.on_slice(slice, &mut self.results);
            }
        }
        if let Some(sharded) = &mut self.sharded {
            sharded.on_watermark(ts);
        }
        self.collect_ready();
    }

    fn collect_ready(&mut self) {
        if let Some(sharded) = &mut self.sharded {
            sharded.drain_merged(&mut self.merged);
            for (group, slice) in self.merged.drain(..) {
                if let Some(assembler) = self.sharded_assemblers.get_mut(group) {
                    assembler.on_slice(slice, &mut self.results);
                }
            }
        }
    }

    /// Takes all results produced since the last drain, in canonical
    /// `(query, window end, key, window start)` order.
    pub fn drain_results(&mut self) -> Vec<QueryResult> {
        self.collect_ready();
        let mut out = std::mem::take(&mut self.results);
        crate::query::sort_results(&mut out);
        out
    }

    /// Results produced and not yet drained.
    pub fn pending_results(&self) -> usize {
        self.results.len()
    }

    /// Removes a query at runtime on every shard and pinned pipeline.
    pub fn remove_query(&mut self, id: QueryId, immediate: bool) {
        if let Some(sharded) = &mut self.sharded {
            sharded.remove_query(id, immediate);
        }
        for assembler in &mut self.sharded_assemblers {
            assembler.remove_query(id);
        }
        for p in &mut self.pinned {
            p.slicer.remove_query(id, immediate);
        }
    }

    /// Ends the stream: joins the shard workers and drains what their
    /// watermarks covered. Call after a final
    /// [`ParallelEngine::on_watermark`] past the last window of
    /// interest.
    pub fn finish(&mut self) {
        if let Some(sharded) = &mut self.sharded {
            sharded.finish();
        }
        self.collect_ready();
    }

    /// Aggregated metrics over all shards and pipelines; the slicer
    /// counters of shard workers are complete after
    /// [`ParallelEngine::finish`]. Also publishes cumulative `engine.*`
    /// and per-shard counters into the registry.
    pub fn metrics(&self) -> EngineMetrics {
        let mut m = EngineMetrics::default();
        if let Some(sharded) = &self.sharded {
            m.absorb(&sharded.metrics());
            sharded.publish(&self.registry);
        }
        for assembler in &self.sharded_assemblers {
            m.results += assembler.results_emitted();
            m.merges += assembler.merges();
        }
        for p in &self.pinned {
            m.absorb(p.slicer.metrics());
            m.results += p.assembler.results_emitted();
            m.merges += p.assembler.merges();
        }
        m.events = self.events;
        m.publish(&self.registry, "engine");
        m
    }
}

/// Whether every window of the group punctuates at data-independent
/// instants (fixed time windows), making the group safe to shard by key.
fn group_is_shardable(group: &QueryGroup) -> bool {
    group
        .queries
        .iter()
        .all(|cq| cq.query.window.has_precomputable_puncts())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AggregationEngine;
    use crate::window::WindowSpec;

    fn canon(mut results: Vec<QueryResult>) -> Vec<QueryResult> {
        crate::query::sort_results(&mut results);
        results
    }

    fn run_sequential(
        queries: Vec<Query>,
        events: &[Event],
        final_wm: Timestamp,
    ) -> Vec<QueryResult> {
        let mut engine = AggregationEngine::new(queries).unwrap();
        for ev in events {
            engine.on_event(ev);
        }
        engine.on_watermark(final_wm);
        canon(engine.drain_results())
    }

    fn run_parallel(
        queries: Vec<Query>,
        events: &[Event],
        final_wm: Timestamp,
        shards: usize,
    ) -> Vec<QueryResult> {
        let mut engine = ParallelEngine::new(queries, shards).unwrap();
        for ev in events {
            engine.on_event(ev);
        }
        engine.on_watermark(final_wm);
        engine.finish();
        canon(engine.drain_results())
    }

    fn mixed_queries() -> Vec<Query> {
        vec![
            Query::new(
                1,
                WindowSpec::tumbling_time(1_000).unwrap(),
                AggFunction::Max,
            ),
            Query::new(
                2,
                WindowSpec::sliding_time(2_000, 500).unwrap(),
                AggFunction::Quantile(0.9),
            ),
            Query::new(3, WindowSpec::session(400).unwrap(), AggFunction::Median),
        ]
    }

    fn events(n: u64, keys: u32) -> Vec<Event> {
        (0..n)
            .map(|i| Event::new(i, (i as u32) % keys, (i % 97) as f64))
            .collect()
    }

    #[test]
    fn matches_sequential_with_mixed_groups() {
        let evs = events(4_000, 10);
        let seq = run_sequential(mixed_queries(), &evs, 10_000);
        for shards in [1, 2, 4] {
            let par = run_parallel(mixed_queries(), &evs, 10_000, shards);
            assert_eq!(par, seq, "shards={shards}");
        }
    }

    #[test]
    fn matches_sequential_with_fewer_keys_than_shards() {
        // Shards 2..6 see no events at all: watermark forcing must still
        // complete every merged slice.
        let evs: Vec<Event> = (0..2_000u64)
            .map(|i| Event::new(i, (i % 2) as u32, i as f64))
            .collect();
        let queries = vec![Query::new(
            1,
            WindowSpec::tumbling_time(500).unwrap(),
            AggFunction::Average,
        )];
        let seq = run_sequential(queries.clone(), &evs, 5_000);
        let par = run_parallel(queries, &evs, 5_000, 7);
        assert_eq!(par, seq);
    }

    #[test]
    fn drain_is_deterministic_at_watermark_barriers() {
        let queries = vec![
            Query::new(
                1,
                WindowSpec::tumbling_time(1_000).unwrap(),
                AggFunction::Sum,
            ),
            Query::new(
                2,
                WindowSpec::tumbling_time(1_000).unwrap(),
                AggFunction::Median,
            ),
        ];
        let run = || {
            let mut engine = ParallelEngine::new(queries.clone(), 4).unwrap();
            let mut drained: Vec<Vec<QueryResult>> = Vec::new();
            for i in 0..6_000u64 {
                engine.on_event(&Event::new(i, (i % 8) as u32, (i % 13) as f64));
                if i % 1_000 == 999 {
                    engine.on_watermark(i + 1);
                    drained.push(engine.drain_results());
                }
            }
            engine.on_watermark(10_000);
            engine.finish();
            drained.push(engine.drain_results());
            drained
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "watermark-aligned drains must be byte-identical");
        assert!(a.iter().any(|batch| !batch.is_empty()));
    }

    #[test]
    fn batched_ingestion_matches_per_event() {
        let evs = events(3_000, 5);
        let queries = vec![Query::new(
            1,
            WindowSpec::sliding_time(1_000, 250).unwrap(),
            AggFunction::Variance,
        )];
        let per_event = run_parallel(queries.clone(), &evs, 8_000, 3);
        let mut engine = ParallelEngine::new(queries, 3).unwrap();
        for chunk in evs.chunks(173) {
            engine.on_batch(&EventBatch::from(chunk.to_vec()));
        }
        engine.on_watermark(8_000);
        engine.finish();
        assert_eq!(canon(engine.drain_results()), per_event);
    }

    #[test]
    fn out_of_order_input_with_lateness_matches_sorted_sequential() {
        let mut evs: Vec<Event> = (0..2_000u64)
            .map(|i| Event::new(i, (i % 6) as u32, (i % 31) as f64))
            .collect();
        // Bounded jitter well within the lateness budget.
        for i in (0..evs.len()).step_by(7) {
            let j = (i + 3).min(evs.len() - 1);
            evs.swap(i, j);
        }
        let mut sorted = evs.clone();
        sorted.sort_by_key(|e| e.ts);
        let queries = vec![Query::new(
            1,
            WindowSpec::tumbling_time(200).unwrap(),
            AggFunction::Sum,
        )];
        let seq = run_sequential(queries.clone(), &sorted, 5_000);
        let mut cfg = ParallelConfig::new(4);
        cfg.lateness = Some(100);
        let mut engine = ParallelEngine::with_config(queries, cfg).unwrap();
        for ev in &evs {
            engine.on_event(ev);
        }
        engine.on_watermark(5_000);
        engine.finish();
        assert_eq!(canon(engine.drain_results()), seq);
    }

    #[test]
    fn metrics_cover_all_shards_and_publish() {
        let evs = events(1_000, 4);
        let mut engine = ParallelEngine::new(mixed_queries(), 2).unwrap();
        for ev in &evs {
            engine.on_event(ev);
        }
        engine.on_watermark(5_000);
        engine.finish();
        let m = engine.metrics();
        assert_eq!(m.events, 1_000);
        assert!(m.slices > 0);
        assert!(m.results > 0);
        let snap = engine.registry().snapshot();
        let shard0 = snap.counters[&names::engine_shard_events(0)];
        let shard1 = snap.counters[&names::engine_shard_events(1)];
        assert!(shard0 > 0);
        assert!(shard1 > 0);
        assert_eq!(shard0 + shard1, 1_000);
        assert_eq!(snap.counters[names::ENGINE_SHARD_PANICS], 0);
    }

    #[test]
    fn remove_query_stops_new_windows() {
        let queries = vec![
            Query::new(1, WindowSpec::tumbling_time(100).unwrap(), AggFunction::Sum),
            Query::new(
                2,
                WindowSpec::tumbling_time(100).unwrap(),
                AggFunction::Count,
            ),
        ];
        let mut engine = ParallelEngine::new(queries, 2).unwrap();
        engine.on_event(&Event::new(0, 0, 1.0));
        engine.remove_query(2, true);
        for i in 1..500u64 {
            engine.on_event(&Event::new(i, (i % 2) as u32, 1.0));
        }
        engine.on_watermark(1_000);
        engine.finish();
        let results = engine.drain_results();
        assert!(results.iter().all(|r| r.query != 2));
        assert!(results.iter().any(|r| r.query == 1));
    }
}
