//! The Desis aggregation engine (paper Section 4).
//!
//! [`AggregationEngine`] is the single-node facade: the query analyzer
//! compiles queries into query-groups, each group gets a [`GroupSlicer`]
//! (incremental aggregation + slicing) and an [`Assembler`] (window
//! merging). Decentralized deployments (the `desis-net` crate) drive the
//! same [`GroupSlicer`] on local nodes and the same [`Assembler`] on the
//! root, exchanging [`SealedSlice`] partials.

pub mod analyzer;
pub mod assembler;
pub mod group;
pub mod parallel;
pub mod reorder;
pub mod slice;
pub mod slicer;

pub use analyzer::{Deployment, QueryAnalyzer, SharingPolicy};
pub use assembler::Assembler;
pub use group::{GroupExecution, GroupId, QueryGroup, Selection, SelectionId};
pub use parallel::{ParallelConfig, ParallelEngine, ShardedSlicer};
pub use reorder::ReorderBuffer;
pub use slice::{SealedSlice, SessionGap, SliceData, SliceId, WindowEnd};
pub use slicer::GroupSlicer;

use std::sync::Arc;

use crate::error::DesisError;
use crate::event::Event;
use crate::metrics::EngineMetrics;
use crate::obs::prof::{self, ProfHandle, Profiler, Stage};
use crate::obs::MetricsRegistry;
use crate::query::{Query, QueryId, QueryResult};
use crate::time::Timestamp;

/// One query-group pipeline: slicer feeding an assembler.
#[derive(Debug, Clone)]
struct Pipeline {
    slicer: GroupSlicer,
    assembler: Assembler,
}

/// Single-node Desis aggregation engine.
///
/// ```
/// use desis_core::prelude::*;
///
/// let queries = vec![
///     Query::new(1, WindowSpec::tumbling_time(1_000)?, AggFunction::Average),
///     Query::new(2, WindowSpec::sliding_time(2_000, 500)?, AggFunction::Max),
/// ];
/// let mut engine = AggregationEngine::new(queries)?;
/// for i in 0..10_000u64 {
///     engine.on_event(&Event::new(i, (i % 4) as u32, i as f64));
/// }
/// engine.on_watermark(10_000);
/// let results = engine.drain_results();
/// assert!(!results.is_empty());
/// # Ok::<(), desis_core::DesisError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AggregationEngine {
    analyzer: QueryAnalyzer,
    pipelines: Vec<Pipeline>,
    scratch: Vec<SealedSlice>,
    results: Vec<QueryResult>,
    next_group_id: GroupId,
    registry: Arc<MetricsRegistry>,
    /// Profiler handle on the `"seq"` lane, present when a global
    /// profiler is installed at construction (clones mint a fresh
    /// handle; tallies merge additively by lane).
    prof: Option<ProfHandle>,
}

impl AggregationEngine {
    /// Builds an engine with full Desis sharing for `queries`.
    pub fn new(queries: Vec<Query>) -> Result<Self, DesisError> {
        Self::with_analyzer(queries, QueryAnalyzer::default())
    }

    /// Builds an engine with an explicit sharing policy / deployment.
    pub fn with_analyzer(queries: Vec<Query>, analyzer: QueryAnalyzer) -> Result<Self, DesisError> {
        Self::with_registry(queries, analyzer, Arc::new(MetricsRegistry::new()))
    }

    /// Builds an engine publishing observability into a shared `registry`
    /// (per-query result-latency histograms, cumulative `engine.*`
    /// counters on [`AggregationEngine::metrics`]).
    pub fn with_registry(
        queries: Vec<Query>,
        analyzer: QueryAnalyzer,
        registry: Arc<MetricsRegistry>,
    ) -> Result<Self, DesisError> {
        let mut prof = Profiler::global().map(|p| p.handle("seq"));
        let groups = {
            let _analyze = prof::scope(&mut prof, Stage::Analyzer);
            analyzer.analyze(queries)?
        };
        let next_group_id = groups.len() as GroupId;
        let pipelines = groups
            .into_iter()
            .map(|g| Pipeline {
                assembler: Assembler::with_registry(&g, Arc::clone(&registry)),
                slicer: GroupSlicer::new(g),
            })
            .collect();
        Ok(Self {
            analyzer,
            pipelines,
            scratch: Vec::new(),
            results: Vec::new(),
            next_group_id,
            registry,
            prof,
        })
    }

    /// The engine's observability registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Number of query-groups.
    pub fn group_count(&self) -> usize {
        self.pipelines.len()
    }

    /// Ingests one event into every query-group.
    #[inline]
    pub fn on_event(&mut self, ev: &Event) {
        for p in &mut self.pipelines {
            {
                let _slice = prof::scope(&mut self.prof, Stage::Slicer);
                p.slicer.on_event(ev, &mut self.scratch);
            }
            if !self.scratch.is_empty() {
                let _assemble = prof::scope(&mut self.prof, Stage::Assemble);
                for slice in self.scratch.drain(..) {
                    p.assembler.on_slice(slice, &mut self.results);
                }
            }
        }
    }

    /// Advances event time, firing pending punctuations.
    pub fn on_watermark(&mut self, ts: Timestamp) {
        for p in &mut self.pipelines {
            {
                let _slice = prof::scope(&mut self.prof, Stage::Slicer);
                p.slicer.on_watermark(ts, &mut self.scratch);
            }
            if !self.scratch.is_empty() {
                let _assemble = prof::scope(&mut self.prof, Stage::Assemble);
                for slice in self.scratch.drain(..) {
                    p.assembler.on_slice(slice, &mut self.results);
                }
            }
        }
    }

    /// Takes all results produced since the last drain, in canonical
    /// `(query, window end, key, window start)` order
    /// ([`crate::query::QueryResult::emit_order`]) — assemblers emit
    /// per-key results in hash-map iteration order, which this makes
    /// byte-reproducible.
    pub fn drain_results(&mut self) -> Vec<QueryResult> {
        let mut out = std::mem::take(&mut self.results);
        {
            let _drain = prof::scope(&mut self.prof, Stage::Drain);
            crate::query::sort_results(&mut out);
        }
        if let Some(h) = &mut self.prof {
            h.flush();
        }
        out
    }

    /// Results produced and not yet drained.
    pub fn pending_results(&self) -> usize {
        self.results.len()
    }

    /// Adds a query at runtime (Section 3.2). The query starts processing
    /// with the next event; it forms a new query-group (sharing with
    /// running groups would require realigning in-flight windows).
    pub fn add_query(&mut self, query: Query) -> Result<(), DesisError> {
        if self
            .pipelines
            .iter()
            .any(|p| p.slicer.group().query_index(query.id).is_some())
        {
            return Err(DesisError::InvalidQuery(format!(
                "duplicate query id {}",
                query.id
            )));
        }
        let mut groups = {
            let _analyze = prof::scope(&mut self.prof, Stage::Analyzer);
            self.analyzer.analyze(vec![query])?
        };
        let mut group = groups.remove(0);
        group.id = self.next_group_id;
        self.next_group_id += 1;
        self.pipelines.push(Pipeline {
            assembler: Assembler::with_registry(&group, Arc::clone(&self.registry)),
            slicer: GroupSlicer::new(group),
        });
        Ok(())
    }

    /// Removes a query at runtime (Section 3.2).
    ///
    /// With `immediate`, in-flight windows of the query are dropped; with
    /// `immediate == false` the query stops opening new windows but its
    /// open windows still produce results ("wait for the last window to
    /// end").
    pub fn remove_query(&mut self, id: QueryId, immediate: bool) -> Result<(), DesisError> {
        for p in &mut self.pipelines {
            if p.slicer.remove_query(id, immediate) {
                return Ok(());
            }
        }
        Err(DesisError::UnknownQuery(id))
    }

    /// Aggregated metrics over all query-groups. The snapshot is also
    /// published into the engine's registry as cumulative `engine.*`
    /// counters.
    pub fn metrics(&self) -> EngineMetrics {
        let mut m = EngineMetrics::default();
        for p in &self.pipelines {
            m.absorb(p.slicer.metrics());
            m.results += p.assembler.results_emitted();
            m.merges += p.assembler.merges();
        }
        m.publish(&self.registry, "engine");
        m
    }

    /// Resets all metric counters.
    pub fn reset_metrics(&mut self) {
        for p in &mut self.pipelines {
            p.slicer.reset_metrics();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggFunction;
    use crate::window::WindowSpec;

    fn tumbling(id: u64, len: u64, f: AggFunction) -> Query {
        Query::new(id, WindowSpec::tumbling_time(len).unwrap(), f)
    }

    #[test]
    fn end_to_end_multiple_groups() {
        use crate::predicate::Predicate;
        // Partially overlapping predicates -> two groups.
        let q1 = tumbling(1, 100, AggFunction::Sum).filtered(Predicate::ValueAbove(10.0));
        let q2 = tumbling(2, 100, AggFunction::Sum).filtered(Predicate::ValueBelow(20.0));
        let mut engine = AggregationEngine::new(vec![q1, q2]).unwrap();
        assert_eq!(engine.group_count(), 2);
        engine.on_event(&Event::new(0, 0, 15.0)); // matches both
        engine.on_event(&Event::new(10, 0, 5.0)); // matches only q2
        engine.on_watermark(100);
        let results = engine.drain_results();
        assert_eq!(results.len(), 2);
        let r1 = results.iter().find(|r| r.query == 1).unwrap();
        let r2 = results.iter().find(|r| r.query == 2).unwrap();
        assert_eq!(r1.values, vec![Some(15.0)]);
        assert_eq!(r2.values, vec![Some(20.0)]);
    }

    #[test]
    fn add_query_at_runtime() {
        let mut engine = AggregationEngine::new(vec![tumbling(1, 100, AggFunction::Sum)]).unwrap();
        engine.on_event(&Event::new(0, 0, 1.0));
        engine
            .add_query(tumbling(2, 50, AggFunction::Count))
            .unwrap();
        assert!(engine
            .add_query(tumbling(2, 50, AggFunction::Count))
            .is_err());
        engine.on_event(&Event::new(10, 0, 2.0));
        engine.on_watermark(100);
        let results = engine.drain_results();
        assert!(results.iter().any(|r| r.query == 1));
        let r2 = results.iter().find(|r| r.query == 2).unwrap();
        // Query 2 saw only the event at ts=10.
        assert_eq!(r2.values, vec![Some(1.0)]);
    }

    #[test]
    fn remove_query_immediately() {
        let mut engine = AggregationEngine::new(vec![
            tumbling(1, 100, AggFunction::Sum),
            tumbling(2, 100, AggFunction::Count),
        ])
        .unwrap();
        engine.on_event(&Event::new(0, 0, 1.0));
        engine.remove_query(2, true).unwrap();
        assert!(engine.remove_query(99, true).is_err());
        engine.on_event(&Event::new(10, 0, 2.0));
        engine.on_watermark(1_000);
        let results = engine.drain_results();
        assert!(results.iter().all(|r| r.query != 2));
        assert!(results.iter().any(|r| r.query == 1));
    }

    #[test]
    fn remove_query_draining_finishes_open_windows() {
        let mut engine = AggregationEngine::new(vec![
            tumbling(1, 100, AggFunction::Sum),
            tumbling(2, 100, AggFunction::Count),
        ])
        .unwrap();
        engine.on_event(&Event::new(0, 0, 1.0));
        engine.remove_query(2, false).unwrap();
        engine.on_event(&Event::new(10, 0, 2.0));
        engine.on_watermark(1_000);
        let results = engine.drain_results();
        // The open window [0,100) of query 2 still completes...
        let q2: Vec<_> = results.iter().filter(|r| r.query == 2).collect();
        assert_eq!(q2.len(), 1);
        assert_eq!(q2[0].window_start, 0);
        // ...but no later windows are created.
        assert!(results
            .iter()
            .filter(|r| r.query == 2)
            .all(|r| r.window_start == 0));
    }

    #[test]
    fn metrics_aggregate_over_groups() {
        let mut engine = AggregationEngine::new(vec![
            tumbling(1, 100, AggFunction::Average),
            tumbling(2, 100, AggFunction::Sum),
        ])
        .unwrap();
        for ts in 0..100 {
            engine.on_event(&Event::new(ts, 0, 1.0));
        }
        engine.on_watermark(100);
        let m = engine.metrics();
        assert_eq!(m.events, 100);
        assert_eq!(m.calculations, 200); // sum + count shared
        assert_eq!(m.slices, 1);
        assert_eq!(m.results, 2);
        engine.reset_metrics();
        assert_eq!(engine.metrics().events, 0);
    }

    #[test]
    fn doc_example_compiles_and_runs() {
        let queries = vec![
            Query::new(
                1,
                WindowSpec::tumbling_time(1_000).unwrap(),
                AggFunction::Average,
            ),
            Query::new(
                2,
                WindowSpec::sliding_time(2_000, 500).unwrap(),
                AggFunction::Max,
            ),
        ];
        let mut engine = AggregationEngine::new(queries).unwrap();
        for i in 0..10_000u64 {
            engine.on_event(&Event::new(i, (i % 4) as u32, i as f64));
        }
        engine.on_watermark(10_000);
        assert!(!engine.drain_results().is_empty());
    }
}
