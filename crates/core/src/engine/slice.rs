//! Slices and their partial results (paper Section 4.1).
//!
//! A slice is a maximal stream segment that crosses no window boundary of
//! any query in the group. Every window of every member query is exactly a
//! contiguous run of slices, so windows are identified by *slice-id
//! ranges*; ids auto-increment, which is also what lets decentralized
//! nodes merge partials by id (Section 5.1.1).

use rustc_hash::FxHashMap;

use crate::aggregate::OperatorBundle;
use crate::event::Key;
use crate::obs::trace::TraceId;
use crate::query::QueryId;
use crate::time::Timestamp;

/// Auto-incrementing slice identifier within a query-group.
pub type SliceId = u64;

/// Partial results of one slice: one keyed bundle map per selection of the
/// group.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SliceData {
    /// `per_selection[s][k]` holds the operator states of selection `s`
    /// for key `k` within this slice.
    pub per_selection: Vec<FxHashMap<Key, OperatorBundle>>,
}

impl SliceData {
    /// Empty data for `n` selections.
    pub fn new(selections: usize) -> Self {
        Self {
            per_selection: vec![FxHashMap::default(); selections],
        }
    }

    /// Whether no selection recorded any event.
    pub fn is_empty(&self) -> bool {
        self.per_selection.iter().all(FxHashMap::is_empty)
    }

    /// Total scalar payload (for network accounting).
    pub fn payload_len(&self) -> usize {
        self.per_selection
            .iter()
            .flat_map(|m| m.values())
            .map(OperatorBundle::payload_len)
            .sum()
    }

    /// Seals every bundle (final sort of non-decomposable sorts).
    pub fn seal(&mut self) {
        for map in &mut self.per_selection {
            for bundle in map.values_mut() {
                bundle.seal();
            }
        }
    }

    /// Merges another slice's data into this one (same group layout).
    pub fn merge(&mut self, other: &SliceData) {
        debug_assert_eq!(self.per_selection.len(), other.per_selection.len());
        for (mine, theirs) in self.per_selection.iter_mut().zip(&other.per_selection) {
            for (key, bundle) in theirs {
                match mine.get_mut(key) {
                    Some(b) => b.merge(bundle),
                    None => {
                        mine.insert(*key, bundle.clone());
                    }
                }
            }
        }
    }
}

/// A window termination notice: window of `query` covering the slice-id
/// range `first_slice ..= last_slice`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowEnd {
    /// Terminated query.
    pub query: QueryId,
    /// First slice of the window.
    pub first_slice: SliceId,
    /// Last slice of the window (inclusive).
    pub last_slice: SliceId,
    /// Window start in event time (informational).
    pub start_ts: Timestamp,
    /// Window end in event time (informational).
    pub end_ts: Timestamp,
}

/// A session gap observed on this node: the inactivity interval that
/// terminated a local session slice. Decentralized session merging keeps
/// the latest gap per child and ends the global session once all child
/// gaps cover each other (Section 5.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionGap {
    /// The session query.
    pub query: QueryId,
    /// Last event timestamp of the local session (gap start).
    pub gap_start: Timestamp,
    /// `gap_start + gap` (gap end).
    pub gap_end: Timestamp,
}

/// A sealed slice with its partial results and windowing annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct SealedSlice {
    /// Auto-incrementing slice id.
    pub id: SliceId,
    /// Slice start (event time, inclusive).
    pub start_ts: Timestamp,
    /// Slice end (event time, exclusive for time punctuations).
    pub end_ts: Timestamp,
    /// Partial results.
    pub data: SliceData,
    /// Windows that terminate with this slice, i.e. end punctuations
    /// attached to the slice (Section 5.1.1 marks slices with `ep`s).
    pub ends: Vec<WindowEnd>,
    /// Session gaps that sealed this slice (for decentralized merging).
    pub session_gaps: Vec<SessionGap>,
    /// Smallest slice id still needed by any active window after this
    /// slice's `ends` are processed; older slices can be dropped.
    pub low_watermark: SliceId,
    /// Same watermark in event time: the earliest window start still
    /// active. Decentralized roots garbage-collect by time, since slice
    /// ids are child-local (Section 5.1).
    pub low_watermark_ts: Timestamp,
    /// Provenance identity minted at slice creation when tracing is
    /// sampled; follows the slice over the wire and through every merge
    /// level (see [`crate::obs::trace`]). `None` for untraced slices.
    pub trace: Option<TraceId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AggFunction, OperatorSet};

    fn data_with(selections: usize, sel: usize, key: Key, values: &[f64]) -> SliceData {
        let mut d = SliceData::new(selections);
        let set = AggFunction::Average.operators() | AggFunction::Median.operators();
        let bundle = d.per_selection[sel]
            .entry(key)
            .or_insert_with(|| OperatorBundle::new(OperatorSet::from_iter(set.iter())));
        for v in values {
            bundle.update(*v);
        }
        d.seal();
        d
    }

    #[test]
    fn emptiness() {
        assert!(SliceData::new(2).is_empty());
        assert!(!data_with(2, 0, 1, &[1.0]).is_empty());
    }

    #[test]
    fn merge_combines_keys_and_selections() {
        let mut a = data_with(2, 0, 1, &[1.0, 2.0]);
        let b = data_with(2, 0, 2, &[5.0]);
        let c = data_with(2, 1, 1, &[9.0]);
        a.merge(&b);
        a.merge(&c);
        assert_eq!(a.per_selection[0].len(), 2);
        assert_eq!(a.per_selection[1].len(), 1);
        assert_eq!(
            a.per_selection[0][&1].finalize(&AggFunction::Average),
            Some(1.5)
        );
        assert_eq!(
            a.per_selection[1][&1].finalize(&AggFunction::Median),
            Some(9.0)
        );
    }

    #[test]
    fn merge_same_key_merges_bundles() {
        let mut a = data_with(1, 0, 7, &[1.0, 3.0]);
        let b = data_with(1, 0, 7, &[5.0]);
        a.merge(&b);
        assert_eq!(
            a.per_selection[0][&7].finalize(&AggFunction::Average),
            Some(3.0)
        );
        assert_eq!(
            a.per_selection[0][&7].finalize(&AggFunction::Median),
            Some(3.0)
        );
    }

    #[test]
    fn payload_len_counts_scalars() {
        let d = data_with(1, 0, 1, &[1.0, 2.0, 3.0]);
        // sum + count scalars + 3 kept NSort values
        assert_eq!(d.payload_len(), 5);
    }
}
