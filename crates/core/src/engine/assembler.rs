//! Window assembly from slice partials (paper Section 4.3).
//!
//! The assembler keeps the list of sealed-slice partial results. Whenever
//! a slice carries an end punctuation, it merges the partial results of
//! the window's slice range (for the terminated query's selection only),
//! finalizes each of the query's aggregation functions per key, and emits
//! [`QueryResult`]s. Partial results no longer referenced by any active
//! window are garbage collected using the slicer's low watermark.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use rustc_hash::FxHashMap;

use crate::aggregate::{AggFunction, OperatorBundle};
use crate::engine::group::{QueryGroup, SelectionId};
use crate::engine::slice::{SealedSlice, SliceId, WindowEnd};
use crate::event::Key;
use crate::obs::trace::{SpanKind, TraceRecorder};
use crate::obs::{LogHistogram, MetricsRegistry};
use crate::query::{QueryId, QueryResult};

/// Slice partial retained by the assembler.
#[derive(Debug, Clone)]
struct StoredSlice {
    id: SliceId,
    data: crate::engine::slice::SliceData,
}

/// Per-query info the assembler needs to finalize windows.
#[derive(Debug, Clone)]
struct QueryInfo {
    selection: SelectionId,
    functions: Vec<AggFunction>,
}

/// Assembles window results from sealed slices of one query-group.
#[derive(Debug, Clone)]
pub struct Assembler {
    queries: FxHashMap<QueryId, QueryInfo>,
    slices: VecDeque<StoredSlice>,
    /// Number of results emitted (paper: result materialization dominates
    /// beyond 10k queries, Figure 13a).
    results_emitted: u64,
    /// Slice-partial merge operations performed while assembling windows.
    merges: u64,
    /// Observability registry receiving per-query result latencies.
    registry: Arc<MetricsRegistry>,
    /// Cached per-query latency histogram handles
    /// (`engine.result_latency_us.q<id>`).
    latency: FxHashMap<QueryId, Arc<LogHistogram>>,
    /// Provenance span recorder; `None` (the default) disables tracing.
    tracer: Option<TraceRecorder>,
}

impl Assembler {
    /// Creates an assembler for `group` with a private metrics registry.
    pub fn new(group: &QueryGroup) -> Self {
        Self::with_registry(group, Arc::new(MetricsRegistry::new()))
    }

    /// Creates an assembler publishing into a shared `registry`.
    pub fn with_registry(group: &QueryGroup, registry: Arc<MetricsRegistry>) -> Self {
        let queries = group
            .queries
            .iter()
            .map(|cq| {
                (
                    cq.query.id,
                    QueryInfo {
                        selection: cq.selection,
                        functions: cq.query.functions.clone(),
                    },
                )
            })
            .collect();
        Self {
            queries,
            slices: VecDeque::new(),
            results_emitted: 0,
            merges: 0,
            registry,
            latency: FxHashMap::default(),
            tracer: None,
        }
    }

    /// Enables causal slice tracing: traced slices that terminate windows
    /// record `WindowAssembled`/`ResultEmitted` spans.
    pub fn set_recorder(&mut self, recorder: TraceRecorder) {
        self.tracer = Some(recorder);
    }

    /// Number of slice partials currently retained.
    pub fn retained_slices(&self) -> usize {
        self.slices.len()
    }

    /// Total results emitted so far.
    pub fn results_emitted(&self) -> u64 {
        self.results_emitted
    }

    /// Total slice-partial merge operations performed so far.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// The registry receiving this assembler's latency histograms.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Stops finalizing windows for `query` (runtime removal, Section
    /// 3.2). Returns `false` if the query is unknown.
    pub fn remove_query(&mut self, query: QueryId) -> bool {
        self.queries.remove(&query).is_some()
    }

    /// Ingests a sealed slice: stores its partials, assembles every window
    /// it terminates, then garbage-collects unreachable partials.
    ///
    /// Windows of different queries frequently cover the *same* slice
    /// range (e.g. a thousand equal-length tumbling windows with different
    /// functions, Figure 9c); their merged partials are computed once per
    /// distinct `(selection, range)` and shared across queries.
    pub fn on_slice(&mut self, slice: SealedSlice, out: &mut Vec<QueryResult>) {
        let low = slice.low_watermark;
        let ends = slice.ends.clone();
        let trace = slice.trace;
        self.slices.push_back(StoredSlice {
            id: slice.id,
            data: slice.data,
        });
        let mut merge_cache: FxHashMap<
            (SelectionId, SliceId, SliceId),
            FxHashMap<Key, OperatorBundle>,
        > = FxHashMap::default();
        for end in &ends {
            let before = out.len();
            self.assemble_cached(end, &mut merge_cache, out);
            if let (Some(rec), Some(id)) = (&mut self.tracer, trace) {
                if out.len() > before {
                    rec.record(id, SpanKind::WindowAssembled);
                    rec.record(id, SpanKind::ResultEmitted { query: end.query });
                }
            }
        }
        self.gc(low);
    }

    /// Merges the partial results of `end`'s slice range and finalizes the
    /// query's functions per key.
    pub fn assemble(&mut self, end: &WindowEnd, out: &mut Vec<QueryResult>) {
        let mut cache = FxHashMap::default();
        self.assemble_cached(end, &mut cache, out);
    }

    fn assemble_cached(
        &mut self,
        end: &WindowEnd,
        merge_cache: &mut FxHashMap<
            (SelectionId, SliceId, SliceId),
            FxHashMap<Key, OperatorBundle>,
        >,
        out: &mut Vec<QueryResult>,
    ) {
        // Unknown ids are tolerated: in-flight ends of queries removed at
        // runtime (Section 3.2) may still arrive.
        let Some(info) = self.queries.get(&end.query).cloned() else {
            return;
        };
        let started = Instant::now();
        let sel = info.selection as usize;
        let cache_key = (info.selection, end.first_slice, end.last_slice);
        let merged = match merge_cache.entry(cache_key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let mut merged: FxHashMap<Key, OperatorBundle> = FxHashMap::default();
                for stored in &self.slices {
                    if stored.id < end.first_slice || stored.id > end.last_slice {
                        continue;
                    }
                    for (key, bundle) in &stored.data.per_selection[sel] {
                        match merged.get_mut(key) {
                            Some(b) => {
                                b.merge(bundle);
                                self.merges += 1;
                            }
                            None => {
                                merged.insert(*key, bundle.clone());
                            }
                        }
                    }
                }
                e.insert(merged)
            }
        };
        // Emit in key order so assembly output is hash-order-free even
        // before the engine's canonical drain sort.
        let mut keys: Vec<Key> = merged.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let bundle = &merged[&key];
            let values: Vec<Option<f64>> =
                info.functions.iter().map(|f| bundle.finalize(f)).collect();
            out.push(QueryResult {
                query: end.query,
                key,
                window_start: end.start_ts,
                window_end: end.end_ts,
                values,
            });
            self.results_emitted += 1;
        }
        self.latency_histogram(end.query)
            .record_secs(started.elapsed().as_secs_f64());
    }

    /// The result-latency histogram of one query, created on first use.
    fn latency_histogram(&mut self, query: QueryId) -> Arc<LogHistogram> {
        match self.latency.get(&query) {
            Some(h) => Arc::clone(h),
            None => {
                let h = self
                    .registry
                    .histogram(&crate::obs::names::engine_result_latency_us(query));
                self.latency.insert(query, Arc::clone(&h));
                h
            }
        }
    }

    /// Drops slice partials older than `low` — partials that no longer
    /// belong to any active window (Section 4.3: "if there are any partial
    /// results that do not belong to any window, the aggregation engine
    /// will delete them").
    pub fn gc(&mut self, low: SliceId) {
        while let Some(front) = self.slices.front() {
            if front.id < low {
                self.slices.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::analyzer::QueryAnalyzer;
    use crate::engine::slicer::GroupSlicer;
    use crate::event::Event;
    use crate::query::Query;
    use crate::time::Timestamp;
    use crate::window::WindowSpec;

    /// End-to-end slicer + assembler over one group.
    fn run(queries: Vec<Query>, events: &[Event], final_wm: Timestamp) -> Vec<QueryResult> {
        let mut groups = QueryAnalyzer::default().analyze(queries).unwrap();
        assert_eq!(groups.len(), 1);
        let group = groups.remove(0);
        let mut slicer = GroupSlicer::new(group.clone());
        let mut assembler = Assembler::new(&group);
        let mut slices = Vec::new();
        let mut results = Vec::new();
        for ev in events {
            slicer.on_event(ev, &mut slices);
            for s in slices.drain(..) {
                assembler.on_slice(s, &mut results);
            }
        }
        slicer.on_watermark(final_wm, &mut slices);
        for s in slices.drain(..) {
            assembler.on_slice(s, &mut results);
        }
        results
    }

    #[test]
    fn tumbling_average_per_key() {
        let q = Query::new(
            1,
            WindowSpec::tumbling_time(100).unwrap(),
            AggFunction::Average,
        );
        let events = vec![
            Event::new(0, 1, 10.0),
            Event::new(10, 1, 20.0),
            Event::new(20, 2, 100.0),
            Event::new(110, 1, 42.0),
        ];
        let mut results = run(vec![q], &events, 200);
        results.sort_by_key(|r| (r.window_start, r.key));
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].key, 1);
        assert_eq!(results[0].values, vec![Some(15.0)]);
        assert_eq!(results[1].key, 2);
        assert_eq!(results[1].values, vec![Some(100.0)]);
        assert_eq!(results[2].window_start, 100);
        assert_eq!(results[2].values, vec![Some(42.0)]);
    }

    #[test]
    fn sliding_windows_reuse_slice_partials() {
        let q = Query::new(
            1,
            WindowSpec::sliding_time(100, 50).unwrap(),
            AggFunction::Sum,
        );
        let events = vec![
            Event::new(0, 0, 1.0),
            Event::new(60, 0, 2.0),
            Event::new(120, 0, 4.0),
        ];
        let mut results = run(vec![q], &events, 300);
        results.sort_by_key(|r| r.window_start);
        // Windows: [0,100)=3, [50,150)=6, [100,200)=4, [150,250)=0(empty).
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].values, vec![Some(3.0)]);
        assert_eq!(results[1].values, vec![Some(6.0)]);
        assert_eq!(results[2].values, vec![Some(4.0)]);
    }

    #[test]
    fn figure4_workload_shares_one_sort() {
        // Qa tumbling max, Qb sliding quantile, Qc session median (Fig. 4).
        let qa = Query::new(1, WindowSpec::tumbling_time(100).unwrap(), AggFunction::Max);
        let qb = Query::new(
            2,
            WindowSpec::sliding_time(100, 50).unwrap(),
            AggFunction::Quantile(0.5),
        );
        let qc = Query::new(3, WindowSpec::session(80).unwrap(), AggFunction::Median);
        let events = vec![
            Event::new(0, 0, 1.0),
            Event::new(20, 0, 5.0),
            Event::new(40, 0, 3.0),
            Event::new(60, 0, 2.0),
            Event::new(80, 0, 4.0),
        ];
        let results = run(vec![qa, qb, qc], &events, 1000);
        let max0 = results
            .iter()
            .find(|r| r.query == 1 && r.window_start == 0)
            .unwrap();
        assert_eq!(max0.values, vec![Some(5.0)]);
        let med_sliding = results
            .iter()
            .find(|r| r.query == 2 && r.window_start == 0)
            .unwrap();
        assert_eq!(med_sliding.values, vec![Some(3.0)]);
        // Session [0, 160): all five events, median 3.
        let session = results.iter().find(|r| r.query == 3).unwrap();
        assert_eq!(session.window_start, 0);
        assert_eq!(session.window_end, 160);
        assert_eq!(session.values, vec![Some(3.0)]);
    }

    #[test]
    fn empty_windows_emit_nothing() {
        let q = Query::new(1, WindowSpec::tumbling_time(100).unwrap(), AggFunction::Sum);
        let events = vec![Event::new(0, 0, 1.0), Event::new(450, 0, 2.0)];
        let results = run(vec![q], &events, 500);
        // Windows [100,200)..[300,400) are empty.
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn gc_drops_unreachable_partials() {
        let q = Query::new(1, WindowSpec::tumbling_time(100).unwrap(), AggFunction::Sum);
        let mut groups = QueryAnalyzer::default().analyze(vec![q]).unwrap();
        let group = groups.remove(0);
        let mut slicer = GroupSlicer::new(group.clone());
        let mut assembler = Assembler::new(&group);
        let mut slices = Vec::new();
        let mut results = Vec::new();
        for ts in (0..10_000).step_by(10) {
            slicer.on_event(&Event::new(ts, 0, 1.0), &mut slices);
            for s in slices.drain(..) {
                assembler.on_slice(s, &mut results);
            }
        }
        // Tumbling windows never need more than the current slice.
        assert!(assembler.retained_slices() <= 1);
        assert_eq!(assembler.results_emitted(), results.len() as u64);
    }

    #[test]
    fn multi_function_query_emits_all_values() {
        let q = Query::with_functions(
            1,
            WindowSpec::tumbling_time(100).unwrap(),
            vec![AggFunction::Min, AggFunction::Max, AggFunction::Average],
        );
        let events = vec![
            Event::new(0, 0, 1.0),
            Event::new(10, 0, 9.0),
            Event::new(20, 0, 5.0),
        ];
        let results = run(vec![q], &events, 100);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].values, vec![Some(1.0), Some(9.0), Some(5.0)]);
    }

    #[test]
    fn disjoint_selections_produce_individual_results() {
        use crate::predicate::Predicate;
        let fast = Query::new(
            1,
            WindowSpec::tumbling_time(100).unwrap(),
            AggFunction::Count,
        )
        .filtered(Predicate::ValueAbove(80.0));
        let slow = Query::new(
            2,
            WindowSpec::tumbling_time(100).unwrap(),
            AggFunction::Count,
        )
        .filtered(Predicate::ValueBelow(25.0));
        let events = vec![
            Event::new(0, 0, 90.0),
            Event::new(10, 0, 10.0),
            Event::new(20, 0, 50.0), // matches neither
            Event::new(30, 0, 95.0),
        ];
        let results = run(vec![fast, slow], &events, 100);
        let fast_r = results.iter().find(|r| r.query == 1).unwrap();
        let slow_r = results.iter().find(|r| r.query == 2).unwrap();
        assert_eq!(fast_r.values, vec![Some(2.0)]);
        assert_eq!(slow_r.values, vec![Some(1.0)]);
    }

    #[test]
    fn count_window_results() {
        let q = Query::new(
            1,
            WindowSpec::tumbling_count(3).unwrap(),
            AggFunction::Average,
        );
        let events: Vec<Event> = (0..9)
            .map(|i| Event::new(i as u64, 0, (i + 1) as f64))
            .collect();
        let results = run(vec![q], &events, 100);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].values, vec![Some(2.0)]); // avg(1,2,3)
        assert_eq!(results[1].values, vec![Some(5.0)]); // avg(4,5,6)
        assert_eq!(results[2].values, vec![Some(8.0)]); // avg(7,8,9)
    }
}
