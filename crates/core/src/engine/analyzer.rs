//! The query analyzer (paper Section 3.1, Section 4.2.3, Section 5.2).
//!
//! The analyzer assigns queries to query-groups. How aggressively partial
//! results may be shared is controlled by a [`SharingPolicy`], which lets
//! the same engine double as the paper's `DeSW` baseline (sharing only
//! within the same function set and measure) — see Section 6.1.1.

use crate::engine::group::{GroupId, QueryGroup, SelectionId};
use crate::error::DesisError;
use crate::predicate::{Overlap, Predicate};
use crate::query::Query;
use crate::window::Measure;

/// How widely partial results may be shared across queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SharingPolicy {
    /// Desis: share across window types, measures, and aggregation
    /// functions (operator-level sharing).
    #[default]
    Full,
    /// DeSW / Scotty-style: share only between queries with the same set
    /// of aggregation functions *and* the same window measure.
    PerFunctionAndMeasure,
    /// Scotty-style: share only between queries with the same set of
    /// aggregation functions (any measure).
    PerFunction,
    /// No sharing: one query-group per query (DeBucket-style grouping).
    None,
}

/// Where the analyzed queries will run, which affects grouping:
/// in a decentralized deployment, count-measured windows and
/// non-decomposable functions are only terminated on the root (Section
/// 5.2), so they must not share groups with decentrally-aggregated
/// queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Deployment {
    /// Single-node / root-only processing: everything may share one group.
    #[default]
    Centralized,
    /// Multi-node processing: split decomposable time-measured queries
    /// from root-only (count-based / non-decomposable) queries.
    Decentralized,
}

/// The query analyzer.
#[derive(Debug, Clone, Default)]
pub struct QueryAnalyzer {
    /// Sharing policy to apply.
    pub policy: SharingPolicy,
    /// Deployment the groups will run in.
    pub deployment: Deployment,
}

/// Per-deployment sharing class of a query (Section 5.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ShareClass {
    /// Decomposable, time-measured: decentralized aggregation.
    Decentralized,
    /// Processed on the root: count-based windows and/or non-decomposable
    /// functions may share one group there.
    RootOnly,
}

impl QueryAnalyzer {
    /// Creates an analyzer with the given policy and deployment.
    pub fn new(policy: SharingPolicy, deployment: Deployment) -> Self {
        Self { policy, deployment }
    }

    /// Groups `queries` into query-groups.
    ///
    /// Queries are validated; duplicate query ids are rejected. The
    /// grouping is greedy and order-dependent (a query joins the first
    /// group it is compatible with), matching the incremental add-query
    /// path of the running system (Section 3.2).
    pub fn analyze(&self, queries: Vec<Query>) -> Result<Vec<QueryGroup>, DesisError> {
        let mut seen_ids = std::collections::HashSet::new();
        for q in &queries {
            q.validate()?;
            if !seen_ids.insert(q.id) {
                return Err(DesisError::InvalidQuery(format!(
                    "duplicate query id {}",
                    q.id
                )));
            }
        }

        // Draft groups: member (query, selection) pairs + predicate list.
        struct Draft {
            members: Vec<(Query, SelectionId)>,
            predicates: Vec<Predicate>,
            class: ShareClass,
            share_key: Option<ShareKey>,
        }
        // Key for restricted sharing policies.
        #[derive(PartialEq)]
        struct ShareKey {
            functions: Vec<crate::aggregate::AggFunction>,
            measure: Option<Measure>,
        }

        let mut drafts: Vec<Draft> = Vec::new();
        for q in queries {
            let class = match self.deployment {
                Deployment::Centralized => ShareClass::Decentralized,
                Deployment::Decentralized => {
                    if q.is_decomposable() && q.window.measure == Measure::Time {
                        ShareClass::Decentralized
                    } else {
                        ShareClass::RootOnly
                    }
                }
            };
            let share_key = match self.policy {
                SharingPolicy::Full => None,
                SharingPolicy::PerFunctionAndMeasure => {
                    let mut functions = q.functions.clone();
                    functions.sort_by(|a, b| format!("{a}").cmp(&format!("{b}")));
                    Some(ShareKey {
                        functions,
                        measure: Some(q.window.measure),
                    })
                }
                SharingPolicy::PerFunction => {
                    let mut functions = q.functions.clone();
                    functions.sort_by(|a, b| format!("{a}").cmp(&format!("{b}")));
                    Some(ShareKey {
                        functions,
                        measure: None,
                    })
                }
                SharingPolicy::None => None,
            };

            let target = if self.policy == SharingPolicy::None {
                None
            } else {
                drafts.iter_mut().find(|d| {
                    d.class == class
                        && d.share_key == share_key
                        && d.predicates.iter().all(|p| p.compatible(&q.predicate))
                })
            };
            match target {
                Some(d) => {
                    let sel = d
                        .predicates
                        .iter()
                        .position(|p| p.overlap(&q.predicate) == Overlap::Equal)
                        .unwrap_or_else(|| {
                            d.predicates.push(q.predicate);
                            d.predicates.len() - 1
                        });
                    d.members.push((q, sel as SelectionId));
                }
                None => {
                    drafts.push(Draft {
                        predicates: vec![q.predicate],
                        members: vec![(q, 0)],
                        class,
                        share_key,
                    });
                }
            }
        }

        Ok(drafts
            .into_iter()
            .enumerate()
            .map(|(i, d)| QueryGroup::build(i as GroupId, d.members, d.predicates))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggFunction;
    use crate::engine::group::GroupExecution;
    use crate::window::WindowSpec;

    fn tumbling(id: u64, f: AggFunction) -> Query {
        Query::new(id, WindowSpec::tumbling_time(1000).unwrap(), f)
    }

    #[test]
    fn full_policy_merges_different_functions_and_types() {
        // Figure 4: tumbling max, sliding quantile, session median share a
        // single query-group.
        let queries = vec![
            Query::new(
                1,
                WindowSpec::tumbling_time(1000).unwrap(),
                AggFunction::Max,
            ),
            Query::new(
                2,
                WindowSpec::sliding_time(2000, 500).unwrap(),
                AggFunction::Quantile(0.9),
            ),
            Query::new(3, WindowSpec::session(400).unwrap(), AggFunction::Median),
        ];
        let groups = QueryAnalyzer::default().analyze(queries).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].selections[0].operators.len(), 1); // one NSort
    }

    #[test]
    fn per_function_policy_splits_functions() {
        let queries = vec![
            tumbling(1, AggFunction::Average),
            tumbling(2, AggFunction::Sum),
            tumbling(3, AggFunction::Average),
        ];
        let groups = QueryAnalyzer::new(SharingPolicy::PerFunction, Deployment::Centralized)
            .analyze(queries)
            .unwrap();
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn per_function_measure_policy_also_splits_measures() {
        let queries = vec![
            tumbling(1, AggFunction::Sum),
            Query::new(
                2,
                WindowSpec::tumbling_count(100).unwrap(),
                AggFunction::Sum,
            ),
        ];
        let pf = QueryAnalyzer::new(SharingPolicy::PerFunction, Deployment::Centralized)
            .analyze(queries.clone())
            .unwrap();
        assert_eq!(pf.len(), 1);
        let pfm = QueryAnalyzer::new(
            SharingPolicy::PerFunctionAndMeasure,
            Deployment::Centralized,
        )
        .analyze(queries)
        .unwrap();
        assert_eq!(pfm.len(), 2);
    }

    #[test]
    fn none_policy_isolates_every_query() {
        let queries = vec![
            tumbling(1, AggFunction::Sum),
            tumbling(2, AggFunction::Sum),
            tumbling(3, AggFunction::Sum),
        ];
        let groups = QueryAnalyzer::new(SharingPolicy::None, Deployment::Centralized)
            .analyze(queries)
            .unwrap();
        assert_eq!(groups.len(), 3);
    }

    #[test]
    fn decentralized_splits_count_and_holistic_from_decomposable() {
        let queries = vec![
            tumbling(1, AggFunction::Average),
            tumbling(2, AggFunction::Median),
            Query::new(
                3,
                WindowSpec::tumbling_count(100).unwrap(),
                AggFunction::Sum,
            ),
        ];
        let groups = QueryAnalyzer::new(SharingPolicy::Full, Deployment::Decentralized)
            .analyze(queries)
            .unwrap();
        assert_eq!(groups.len(), 2);
        let decentral = groups
            .iter()
            .find(|g| g.execution == GroupExecution::Decentralized)
            .unwrap();
        assert_eq!(decentral.queries.len(), 1);
        // Median + count-based sum share the root-only group (Section 5.2).
        let root = groups
            .iter()
            .find(|g| g.execution != GroupExecution::Decentralized)
            .unwrap();
        assert_eq!(root.queries.len(), 2);
        // Count member forces raw forwarding for the whole group.
        assert_eq!(root.execution, GroupExecution::RootRaw);
    }

    #[test]
    fn centralized_shares_count_and_time() {
        let queries = vec![
            tumbling(1, AggFunction::Sum),
            Query::new(
                2,
                WindowSpec::tumbling_count(100).unwrap(),
                AggFunction::Sum,
            ),
        ];
        let groups = QueryAnalyzer::default().analyze(queries).unwrap();
        assert_eq!(groups.len(), 1);
    }

    #[test]
    fn disjoint_predicates_share_a_group_with_separate_selections() {
        let q1 = tumbling(1, AggFunction::Sum).filtered(Predicate::ValueAbove(80.0));
        let q2 = tumbling(2, AggFunction::Average).filtered(Predicate::ValueBelow(25.0));
        let groups = QueryAnalyzer::default().analyze(vec![q1, q2]).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].selections.len(), 2);
    }

    #[test]
    fn equal_predicates_share_a_selection() {
        let q1 = tumbling(1, AggFunction::Sum).filtered(Predicate::KeyEquals(3));
        let q2 = tumbling(2, AggFunction::Count).filtered(Predicate::KeyEquals(3));
        let groups = QueryAnalyzer::default().analyze(vec![q1, q2]).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].selections.len(), 1);
    }

    #[test]
    fn partial_overlap_forces_separate_groups() {
        let q1 = tumbling(1, AggFunction::Sum).filtered(Predicate::ValueAbove(10.0));
        let q2 = tumbling(2, AggFunction::Sum).filtered(Predicate::ValueBelow(20.0));
        let groups = QueryAnalyzer::default().analyze(vec![q1, q2]).unwrap();
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let queries = vec![tumbling(1, AggFunction::Sum), tumbling(1, AggFunction::Sum)];
        assert!(QueryAnalyzer::default().analyze(queries).is_err());
    }

    #[test]
    fn invalid_query_rejected() {
        let q = Query::with_functions(1, WindowSpec::tumbling_time(10).unwrap(), vec![]);
        assert!(QueryAnalyzer::default().analyze(vec![q]).is_err());
    }
}
