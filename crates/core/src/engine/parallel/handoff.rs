//! The shard→collector handoff: per-shard mailboxes with unwind-safe
//! close semantics.
//!
//! Each shard worker pushes items into its own mailbox slot; the
//! collector drains the slots in shard order. The contract the loom
//! suite (`crates/core/tests/loom.rs`) model-checks:
//!
//! * **No lost items** — everything pushed before a close is drained.
//! * **No double-emit** — draining moves items out exactly once.
//! * **Exit is always reported** — [`InboxGuard`] closes the slot from
//!   its `Drop` impl, so a worker that unwinds mid-push still reports
//!   [`ShardExit::Panicked`]; only an explicit
//!   [`InboxGuard::finish`] reports [`ShardExit::Clean`].
//!
//! The mailbox uses the [`crate::sync`] facade, so a `--cfg loom` build
//! swaps in the model-checked primitives.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::sync::{Mutex, MutexGuard};

/// How a shard worker left its mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardExit {
    /// The worker drained its channel and exited normally.
    Clean,
    /// The worker unwound (panicked) before finishing; its mailbox holds
    /// everything it managed to push.
    Panicked,
}

/// One shard's mailbox slot.
#[derive(Debug)]
struct ShardQueue<T> {
    items: VecDeque<T>,
    closed: Option<ShardExit>,
    /// High-water queued-item count (shard-balance telemetry: a hot
    /// shard's slot backs up while the collector is busy elsewhere).
    depth_max: usize,
}

/// Per-shard mailboxes from N workers to one collector.
#[derive(Debug)]
pub struct Inbox<T> {
    shards: Vec<Mutex<ShardQueue<T>>>,
}

/// Locks one slot, treating poison as recoverable: a worker that panics
/// while holding the lock must not wedge the collector (the guard's
/// close still goes through, and item state is a plain queue).
fn lock<T>(slot: &Mutex<ShardQueue<T>>) -> MutexGuard<'_, ShardQueue<T>> {
    slot.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<T> Inbox<T> {
    /// An inbox with `shards` empty open slots.
    pub fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| {
                    Mutex::new(ShardQueue {
                        items: VecDeque::new(),
                        closed: None,
                        depth_max: 0,
                    })
                })
                .collect(),
        }
    }

    /// Number of slots.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Appends an item to `shard`'s slot. Returns `false` (dropping the
    /// item) if the slot is closed or out of range — pushes never block
    /// and never panic.
    pub fn push(&self, shard: usize, item: T) -> bool {
        let Some(slot) = self.shards.get(shard) else {
            return false;
        };
        let mut q = lock(slot);
        if q.closed.is_some() {
            return false;
        }
        q.items.push_back(item);
        if q.items.len() > q.depth_max {
            q.depth_max = q.items.len();
        }
        true
    }

    /// High-water queued-item count of `shard`'s slot (0 for
    /// out-of-range shards).
    pub fn depth_max(&self, shard: usize) -> usize {
        self.shards
            .get(shard)
            .map_or(0, |slot| lock(slot).depth_max)
    }

    /// Closes `shard`'s slot with `exit`. The first close wins; later
    /// calls are no-ops (so a guard dropped after an explicit close
    /// cannot overwrite a panic verdict).
    pub fn close(&self, shard: usize, exit: ShardExit) {
        if let Some(slot) = self.shards.get(shard) {
            let mut q = lock(slot);
            if q.closed.is_none() {
                q.closed = Some(exit);
            }
        }
    }

    /// Moves every pending item of `shard` into `out` (in push order)
    /// and reports the slot's exit status, if closed. Draining a closed
    /// slot again returns the same status and no items.
    pub fn drain(&self, shard: usize, out: &mut Vec<T>) -> Option<ShardExit> {
        let slot = self.shards.get(shard)?;
        let mut q = lock(slot);
        out.extend(q.items.drain(..));
        q.closed
    }
}

/// Closes one shard's slot on drop, reporting [`ShardExit::Panicked`]
/// unless [`InboxGuard::finish`] ran first.
///
/// Declared as the *first* local of a worker function, the guard drops
/// last on unwind, after any partially-pushed state — making panic
/// detection automatic with no `catch_unwind` in the data path.
#[derive(Debug)]
pub struct InboxGuard<T> {
    inbox: Arc<Inbox<T>>,
    shard: usize,
    clean: bool,
}

impl<T> InboxGuard<T> {
    /// Guards `shard`'s slot of `inbox`.
    pub fn new(inbox: Arc<Inbox<T>>, shard: usize) -> Self {
        Self {
            inbox,
            shard,
            clean: false,
        }
    }

    /// Pushes an item to the guarded slot.
    pub fn push(&self, item: T) -> bool {
        self.inbox.push(self.shard, item)
    }

    /// Marks the worker's exit as clean; the close itself happens on
    /// drop.
    pub fn finish(mut self) {
        self.clean = true;
    }
}

impl<T> Drop for InboxGuard<T> {
    fn drop(&mut self) {
        let exit = if self.clean {
            ShardExit::Clean
        } else {
            ShardExit::Panicked
        };
        self.inbox.close(self.shard, exit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_drain_roundtrip_in_order() {
        let inbox: Inbox<u32> = Inbox::new(2);
        assert_eq!(inbox.shard_count(), 2);
        assert!(inbox.push(0, 1));
        assert!(inbox.push(0, 2));
        assert!(inbox.push(1, 9));
        let mut out = Vec::new();
        assert_eq!(inbox.drain(0, &mut out), None);
        assert_eq!(out, vec![1, 2]);
        out.clear();
        assert_eq!(inbox.drain(1, &mut out), None);
        assert_eq!(out, vec![9]);
    }

    #[test]
    fn depth_high_water_survives_drains() {
        let inbox: Inbox<u32> = Inbox::new(1);
        for i in 0..5 {
            inbox.push(0, i);
        }
        let mut out = Vec::new();
        inbox.drain(0, &mut out);
        assert_eq!(inbox.depth_max(0), 5);
        inbox.push(0, 9);
        assert_eq!(inbox.depth_max(0), 5, "high water keeps the max");
        assert_eq!(inbox.depth_max(7), 0);
    }

    #[test]
    fn close_rejects_later_pushes_but_keeps_earlier_items() {
        let inbox: Inbox<u32> = Inbox::new(1);
        assert!(inbox.push(0, 7));
        inbox.close(0, ShardExit::Clean);
        assert!(!inbox.push(0, 8));
        let mut out = Vec::new();
        assert_eq!(inbox.drain(0, &mut out), Some(ShardExit::Clean));
        assert_eq!(out, vec![7]);
        // Draining again yields nothing new but the same status.
        out.clear();
        assert_eq!(inbox.drain(0, &mut out), Some(ShardExit::Clean));
        assert!(out.is_empty());
    }

    #[test]
    fn first_close_wins() {
        let inbox: Inbox<u32> = Inbox::new(1);
        inbox.close(0, ShardExit::Panicked);
        inbox.close(0, ShardExit::Clean);
        assert_eq!(inbox.drain(0, &mut Vec::new()), Some(ShardExit::Panicked));
    }

    #[test]
    fn out_of_range_shard_is_inert() {
        let inbox: Inbox<u32> = Inbox::new(1);
        assert!(!inbox.push(5, 1));
        inbox.close(5, ShardExit::Clean);
        assert_eq!(inbox.drain(5, &mut Vec::new()), None);
    }

    #[test]
    fn guard_drop_without_finish_reports_panic() {
        let inbox = Arc::new(Inbox::new(1));
        {
            let guard = InboxGuard::new(Arc::clone(&inbox), 0);
            assert!(guard.push(3));
        }
        let mut out = Vec::new();
        assert_eq!(inbox.drain(0, &mut out), Some(ShardExit::Panicked));
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn guard_finish_reports_clean() {
        let inbox = Arc::new(Inbox::new(1));
        let guard: InboxGuard<u32> = InboxGuard::new(Arc::clone(&inbox), 0);
        guard.finish();
        assert_eq!(inbox.drain(0, &mut Vec::new()), Some(ShardExit::Clean));
    }

    #[test]
    fn unwinding_worker_is_detected() {
        let inbox: Arc<Inbox<u32>> = Arc::new(Inbox::new(1));
        let worker = {
            let inbox = Arc::clone(&inbox);
            std::thread::spawn(move || {
                let guard = InboxGuard::new(inbox, 0);
                guard.push(1);
                panic!("shard worker dies");
            })
        };
        assert!(worker.join().is_err());
        let mut out = Vec::new();
        assert_eq!(inbox.drain(0, &mut out), Some(ShardExit::Panicked));
        assert_eq!(out, vec![1]);
    }
}
