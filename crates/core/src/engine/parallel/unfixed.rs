//! Cross-shard merging of *unfixed* (session / user-defined) window
//! groups — the collector-side twin of the decentralized
//! `UnfixedRootMerger`, with shards in the role of children.
//!
//! A key-sharded slicer sees only its shard's events, so a global
//! session splits into per-shard *fragments*: each shard closes a
//! fragment when its own gap elapses, and fragments of one global
//! session strictly overlap (the bridging events that joined them are
//! within the gap of both). [`UnfixedShardMerger`] span-overlap-merges
//! closed fragments into pending global sessions and holds each one
//! until every live shard's *clear frontier* for that query has passed
//! the session end — an open fragment that could still extend the
//! session keeps the frontier at its own start, so no session is ever
//! emitted before the sequential engine would have closed it, and at a
//! watermark barrier every session the sequential engine has closed is
//! emitted (an open fragment starting before the session end would have
//! kept the sequential session open too).
//!
//! User-defined windows close at broadcast markers, which every shard
//! observes at the same stream position: each shard contributes exactly
//! one partial per window, and a window completes when all live shards
//! have queued theirs. Fixed-window ends (present when a decentralized
//! query-group mixes fixed and unfixed windows) merge by `(query,
//! start, end)` with shard-coverage counting, force-released once the
//! merged shard frontier passes the window end.
//!
//! The merger re-emits every completed window as a *self-contained*
//! sealed slice — merged data, one `WindowEnd` referencing the slice
//! itself, and for sessions the closing `SessionGap` — so the stream it
//! produces feeds the ordinary [`crate::engine::Assembler`] unchanged
//! and ships upstream byte-compatible with what a sequential child
//! would make the root compute.

use std::collections::{BTreeMap, VecDeque};

use rustc_hash::FxHashMap;

use crate::engine::group::QueryGroup;
use crate::engine::slice::{SealedSlice, SessionGap, SliceData, SliceId, WindowEnd};
use crate::obs::trace::{SpanKind, TraceId, TraceRecorder};
use crate::query::QueryId;
use crate::time::{DurationMs, Timestamp};

/// Window kind of an incoming `WindowEnd`, resolved per query id.
#[derive(Debug, Clone, Copy)]
enum EndKind {
    /// Index into the session slot list.
    Session(usize),
    /// Index into the user-defined slot list.
    Ud(usize),
    /// Fixed (time-measured tumbling/sliding) — coverage-counted.
    Fixed,
}

/// A merged-but-unreleased global session.
#[derive(Debug)]
struct PendingSession {
    start: Timestamp,
    end: Timestamp,
    data: SliceData,
    /// Causal trace carried through the merge: the first traced
    /// fragment absorbed into the session wins (the merged window has
    /// one representative provenance chain, like the fixed merge path).
    trace: Option<TraceId>,
}

/// Per-session-query merge state.
#[derive(Debug)]
struct SessionSlot {
    query: QueryId,
    query_idx: usize,
    gap: DurationMs,
    pending: Vec<PendingSession>,
    /// Per-shard clear frontier: no fragment starting before this can
    /// still arrive from that shard. `Timestamp::MAX` once the shard
    /// reported the query's slot gone (removed or fully drained).
    clears: Vec<Timestamp>,
}

/// One queued user-defined window partial: `(start, end, data, trace)`.
type UdPartial = (Timestamp, Timestamp, SliceData, Option<TraceId>);

/// Per-user-defined-query merge state.
#[derive(Debug)]
struct UdSlot {
    query: QueryId,
    /// Per-shard FIFO of window partials — the k-th entry of every
    /// queue is the k-th window of the query.
    queues: Vec<VecDeque<UdPartial>>,
}

/// A fixed window accumulating shard contributions.
#[derive(Debug)]
struct FixedPending {
    data: SliceData,
    seen: Vec<bool>,
    /// First traced shard contribution — the merged window's
    /// representative provenance chain.
    trace: Option<TraceId>,
}

/// Merges the per-shard slice streams of one unfixed query-group back
/// into a deterministic stream of self-contained per-window slices.
#[derive(Debug)]
pub struct UnfixedShardMerger {
    shards: usize,
    selections: usize,
    /// Per-shard retained slices `(shard-local id, data)`, gc'd by the
    /// shard's own low watermark.
    stores: Vec<VecDeque<(SliceId, SliceData)>>,
    dead: Vec<bool>,
    kinds: FxHashMap<QueryId, EndKind>,
    sessions: Vec<SessionSlot>,
    uds: Vec<UdSlot>,
    /// Fixed windows keyed `(end, start, query)` — released in this
    /// order by coverage or by the merged shard frontier.
    fixed: BTreeMap<(Timestamp, Timestamp, QueryId), FixedPending>,
    forced_up_to: Timestamp,
    next_id: SliceId,
    ready: VecDeque<SealedSlice>,
    recorder: Option<TraceRecorder>,
}

impl UnfixedShardMerger {
    /// Creates a merger for `group` over `shards` per-shard slicers.
    pub fn new(group: &QueryGroup, shards: usize) -> Self {
        let shards = shards.max(1);
        let mut kinds = FxHashMap::default();
        let sessions: Vec<SessionSlot> = group
            .session_queries()
            .into_iter()
            .map(|(query_idx, gap)| {
                let query = group.queries[query_idx].query.id;
                kinds.insert(query, EndKind::Session(0));
                SessionSlot {
                    query,
                    query_idx,
                    gap,
                    pending: Vec::new(),
                    clears: vec![0; shards],
                }
            })
            .collect();
        for (pos, slot) in sessions.iter().enumerate() {
            kinds.insert(slot.query, EndKind::Session(pos));
        }
        let uds: Vec<UdSlot> = group
            .user_defined_queries()
            .into_iter()
            .map(|(query_idx, _)| UdSlot {
                query: group.queries[query_idx].query.id,
                queues: vec![VecDeque::new(); shards],
            })
            .collect();
        for (pos, slot) in uds.iter().enumerate() {
            kinds.insert(slot.query, EndKind::Ud(pos));
        }
        for cq in &group.queries {
            kinds.entry(cq.query.id).or_insert(EndKind::Fixed);
        }
        Self {
            shards,
            selections: group.selections.len(),
            stores: vec![VecDeque::new(); shards],
            dead: vec![false; shards],
            kinds,
            sessions,
            uds,
            fixed: BTreeMap::new(),
            forced_up_to: 0,
            next_id: 0,
            ready: VecDeque::new(),
            recorder: None,
        }
    }

    /// Enables causal tracing: the merger records `MergeStart` when a
    /// traced shard partial is adopted as a window's representative
    /// chain and `MergeDone` when the merged window is emitted, and the
    /// emitted slice carries the trace on to the assembler.
    pub fn set_recorder(&mut self, recorder: TraceRecorder) {
        self.recorder = Some(recorder);
    }

    /// Live (non-degraded) shard count.
    fn live(&self) -> usize {
        self.dead.iter().filter(|d| !**d).count()
    }

    /// Merged data of the shard-local slice id range `[first, last]`.
    fn extract(&self, shard: usize, first: SliceId, last: SliceId) -> SliceData {
        let mut data = SliceData::new(self.selections);
        for (id, d) in &self.stores[shard] {
            if *id >= first && *id <= last {
                data.merge(d);
            }
        }
        data
    }

    /// Folds one shard's sealed slice in: stores its data, then absorbs
    /// every window end it carries.
    pub fn on_slice(&mut self, shard: usize, slice: SealedSlice) {
        if shard >= self.shards || self.dead[shard] {
            return;
        }
        let ends = slice.ends;
        let low = slice.low_watermark;
        let trace = slice.trace;
        self.stores[shard].push_back((slice.id, slice.data));
        for end in &ends {
            let Some(kind) = self.kinds.get(&end.query).copied() else {
                continue;
            };
            let data = self.extract(shard, end.first_slice, end.last_slice);
            match kind {
                EndKind::Session(pos) => {
                    self.absorb_session(pos, end.start_ts, end.end_ts, data, trace);
                }
                EndKind::Ud(pos) => {
                    self.uds[pos].queues[shard].push_back((end.start_ts, end.end_ts, data, trace));
                }
                EndKind::Fixed => {
                    let entry = self
                        .fixed
                        .entry((end.end_ts, end.start_ts, end.query))
                        .or_insert_with(|| FixedPending {
                            data: SliceData::new(self.selections),
                            seen: vec![false; self.shards],
                            trace: None,
                        });
                    if !entry.seen[shard] {
                        entry.seen[shard] = true;
                        entry.data.merge(&data);
                        if entry.trace.is_none() {
                            if let Some(id) = trace {
                                entry.trace = Some(id);
                                if let Some(rec) = &mut self.recorder {
                                    rec.record(id, SpanKind::MergeStart);
                                }
                            }
                        }
                    }
                }
            }
        }
        // Everything below the shard's own low watermark is no longer
        // referenced by any of its open or future windows.
        while let Some((id, _)) = self.stores[shard].front() {
            if *id < low {
                self.stores[shard].pop_front();
            } else {
                break;
            }
        }
        self.release_uds();
        self.release_fixed();
    }

    /// Span-overlap-merges a closed fragment into the query's pending
    /// sessions (strict overlap: touching sessions are distinct).
    fn absorb_session(
        &mut self,
        pos: usize,
        start: Timestamp,
        end: Timestamp,
        data: SliceData,
        trace: Option<TraceId>,
    ) {
        let slot = &mut self.sessions[pos];
        let mut merged = PendingSession {
            start,
            end,
            data,
            trace: None,
        };
        let mut keep = Vec::with_capacity(slot.pending.len());
        for p in slot.pending.drain(..) {
            if p.start < merged.end && merged.start < p.end {
                merged.start = merged.start.min(p.start);
                merged.end = merged.end.max(p.end);
                merged.data.merge(&p.data);
                if merged.trace.is_none() {
                    merged.trace = p.trace;
                }
            } else {
                keep.push(p);
            }
        }
        // Absorbed pendings keep their (earlier-adopted) representative
        // chain; only a fragment founding an untraced session starts one.
        if merged.trace.is_none() {
            if let Some(id) = trace {
                merged.trace = Some(id);
                if let Some(rec) = &mut self.recorder {
                    rec.record(id, SpanKind::MergeStart);
                }
            }
        }
        keep.push(merged);
        slot.pending = keep;
    }

    /// Applies one shard's clear-frontier report (sent at every
    /// watermark barrier and at flush). Session queries absent from the
    /// report have no slot on that shard anymore — removed or fully
    /// drained — so nothing further can arrive from it.
    pub fn on_clears(&mut self, shard: usize, clears: &[(usize, Timestamp)]) {
        if shard >= self.shards || self.dead[shard] {
            return;
        }
        for slot in &mut self.sessions {
            let reported = clears
                .iter()
                .find(|(idx, _)| *idx == slot.query_idx)
                .map(|(_, ts)| *ts)
                .unwrap_or(Timestamp::MAX);
            if reported > slot.clears[shard] {
                slot.clears[shard] = reported;
            }
        }
        self.release_sessions();
    }

    /// Every live shard's frontier passed `wm`: fixed windows ending at
    /// or before it release even without full shard coverage (idle
    /// shards sealed nothing for the span).
    pub fn advance(&mut self, wm: Timestamp) {
        if wm > self.forced_up_to {
            self.forced_up_to = wm;
            self.release_fixed();
        }
    }

    /// Degrades a shard: its stored partials are dropped and it no
    /// longer gates coverage or clear frontiers (results may be partial,
    /// mirroring a lost child in the decentralized substrate).
    pub fn mark_dead(&mut self, shard: usize) {
        if shard >= self.shards || self.dead[shard] {
            return;
        }
        self.dead[shard] = true;
        self.stores[shard].clear();
        for slot in &mut self.uds {
            slot.queues[shard].clear();
        }
        self.release_sessions();
        self.release_uds();
        self.release_fixed();
    }

    /// Purges every trace of a removed query.
    pub fn remove_query(&mut self, id: QueryId) {
        self.sessions.retain(|s| s.query != id);
        self.uds.retain(|u| u.query != id);
        self.fixed.retain(|(_, _, q), _| *q != id);
        self.kinds.remove(&id);
    }

    fn release_sessions(&mut self) {
        for pos in 0..self.sessions.len() {
            let clear = {
                let slot = &self.sessions[pos];
                slot.clears
                    .iter()
                    .zip(&self.dead)
                    .filter(|(_, dead)| !**dead)
                    .map(|(c, _)| *c)
                    .min()
                    .unwrap_or(Timestamp::MAX)
            };
            let mut due: Vec<PendingSession> = Vec::new();
            {
                let slot = &mut self.sessions[pos];
                let mut keep = Vec::with_capacity(slot.pending.len());
                for p in slot.pending.drain(..) {
                    if p.end <= clear {
                        due.push(p);
                    } else {
                        keep.push(p);
                    }
                }
                slot.pending = keep;
            }
            due.sort_by_key(|p| (p.end, p.start));
            let (query, gap) = {
                let slot = &self.sessions[pos];
                (slot.query, slot.gap)
            };
            for p in due {
                let PendingSession {
                    start,
                    end,
                    data,
                    trace,
                } = p;
                let gap_start = end.saturating_sub(gap);
                self.emit(
                    start,
                    end,
                    data,
                    |id| WindowEnd {
                        query,
                        first_slice: id,
                        last_slice: id,
                        start_ts: start,
                        end_ts: end,
                    },
                    Some(SessionGap {
                        query,
                        gap_start,
                        gap_end: end,
                    }),
                    trace,
                );
            }
        }
    }

    fn release_uds(&mut self) {
        for pos in 0..self.uds.len() {
            loop {
                let complete = {
                    let slot = &self.uds[pos];
                    slot.queues
                        .iter()
                        .zip(&self.dead)
                        .all(|(q, dead)| *dead || !q.is_empty())
                        && self.live() > 0
                };
                if !complete {
                    break;
                }
                let mut span: Option<(Timestamp, Timestamp)> = None;
                let mut data = SliceData::new(self.selections);
                let mut trace = None;
                let query = self.uds[pos].query;
                for shard in 0..self.shards {
                    if self.dead[shard] {
                        continue;
                    }
                    if let Some((s, e, d, t)) = self.uds[pos].queues[shard].pop_front() {
                        data.merge(&d);
                        if trace.is_none() {
                            trace = t;
                        }
                        span = Some(match span {
                            Some((ms, me)) => (ms.min(s), me.max(e)),
                            None => (s, e),
                        });
                    }
                }
                let Some((start, end)) = span else { break };
                // Adoption happens at release for user-defined windows
                // (the k-th window completes only once every live shard
                // queued its k-th partial), so the merge span collapses
                // to the release instant.
                if let (Some(rec), Some(id)) = (&mut self.recorder, trace) {
                    rec.record(id, SpanKind::MergeStart);
                }
                self.emit(
                    start,
                    end,
                    data,
                    |id| WindowEnd {
                        query,
                        first_slice: id,
                        last_slice: id,
                        start_ts: start,
                        end_ts: end,
                    },
                    None,
                    trace,
                );
            }
        }
    }

    fn release_fixed(&mut self) {
        let live = self.live() as u32;
        loop {
            let releasable = match self.fixed.iter().next() {
                Some(((end, _, _), entry)) => {
                    let coverage = entry
                        .seen
                        .iter()
                        .zip(&self.dead)
                        .filter(|(seen, dead)| **seen && !**dead)
                        .count() as u32;
                    coverage >= live || *end <= self.forced_up_to
                }
                None => false,
            };
            if !releasable {
                break;
            }
            let Some(((end, start, query), entry)) = self.fixed.pop_first() else {
                break;
            };
            self.emit(
                start,
                end,
                entry.data,
                |id| WindowEnd {
                    query,
                    first_slice: id,
                    last_slice: id,
                    start_ts: start,
                    end_ts: end,
                },
                None,
                entry.trace,
            );
        }
    }

    /// Emits one self-contained slice: the merged window data plus a
    /// single `WindowEnd` referencing the slice itself, gc-able
    /// immediately (`low_watermark = id + 1`).
    fn emit(
        &mut self,
        start_ts: Timestamp,
        end_ts: Timestamp,
        data: SliceData,
        end: impl FnOnce(SliceId) -> WindowEnd,
        gap: Option<SessionGap>,
        trace: Option<TraceId>,
    ) {
        if let (Some(rec), Some(id)) = (&mut self.recorder, trace) {
            rec.record(id, SpanKind::MergeDone);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.ready.push_back(SealedSlice {
            id,
            start_ts,
            end_ts,
            data,
            ends: vec![end(id)],
            session_gaps: gap.into_iter().collect(),
            low_watermark: id + 1,
            low_watermark_ts: start_ts,
            trace,
        });
    }

    /// Drains completed windows, tagged with their group index.
    pub fn drain_ready(&mut self, group: usize, out: &mut Vec<(usize, SealedSlice)>) {
        out.extend(self.ready.drain(..).map(|s| (group, s)));
    }

    /// Pending state retained (sessions + fixed windows + queued
    /// user-defined partials) — observability / test hook.
    pub fn pending_len(&self) -> usize {
        self.pending_sessions() + self.fixed.len() + self.queued_ud_slices()
    }

    /// Merged-but-unreleased global sessions held for clear frontiers
    /// (shard-balance telemetry: `engine.unfixed.pending_sessions`).
    pub fn pending_sessions(&self) -> usize {
        self.sessions.iter().map(|s| s.pending.len()).sum()
    }

    /// Queued user-defined window partials awaiting full shard coverage
    /// (shard-balance telemetry: `engine.unfixed.queued_ud_slices`).
    pub fn queued_ud_slices(&self) -> usize {
        self.uds
            .iter()
            .flat_map(|u| u.queues.iter())
            .map(VecDeque::len)
            .sum()
    }
}
