//! Out-of-order ingestion support.
//!
//! The Desis slicer (like the paper's generators) consumes streams in
//! timestamp order. Real sources deliver events out of order; systems in
//! the stream-slicing lineage (Scotty, ICDE'18) bound that disorder by an
//! *allowed lateness*. [`ReorderBuffer`] provides exactly that in front of
//! any ordered consumer: events are buffered until the stream's maximum
//! timestamp has advanced past `ts + lateness`, then released in order;
//! events arriving later than the allowed lateness are counted and
//! dropped.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::event::Event;
use crate::time::{DurationMs, Timestamp};

/// Buffers a bounded amount of disorder and releases an ordered stream.
#[derive(Debug)]
pub struct ReorderBuffer {
    lateness: DurationMs,
    /// Min-heap over `(ts, arrival sequence)` for stable ordering of ties.
    heap: BinaryHeap<Reverse<(Timestamp, u64)>>,
    /// Events keyed by arrival sequence (heap payloads stay `Copy`).
    pending: rustc_hash::FxHashMap<u64, Event>,
    seq: u64,
    max_ts: Timestamp,
    /// Events with `ts < floor` are final: releasing below this bound has
    /// already happened, so later arrivals below it are too late.
    floor: Timestamp,
    late_dropped: u64,
}

impl ReorderBuffer {
    /// Creates a buffer tolerating up to `lateness` of event-time
    /// disorder.
    pub fn new(lateness: DurationMs) -> Self {
        Self {
            lateness,
            heap: BinaryHeap::new(),
            pending: rustc_hash::FxHashMap::default(),
            seq: 0,
            max_ts: 0,
            floor: 0,
            late_dropped: 0,
        }
    }

    /// Number of events currently buffered.
    pub fn buffered(&self) -> usize {
        self.heap.len()
    }

    /// Events dropped because they exceeded the allowed lateness.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Timestamps below this are final: everything below has been
    /// released, and later arrivals below it count as too late.
    pub fn frontier(&self) -> Timestamp {
        self.floor
    }

    /// Offers one (possibly out-of-order) event; any events that become
    /// releasable are appended to `out` in timestamp order.
    ///
    /// Returns `false` if the event was too late and dropped.
    pub fn push(&mut self, ev: Event, out: &mut Vec<Event>) -> bool {
        if ev.ts < self.floor {
            self.late_dropped += 1;
            return false;
        }
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((ev.ts, seq)));
        self.pending.insert(seq, ev);
        self.max_ts = self.max_ts.max(ev.ts);
        // Anything more than `lateness` behind the stream's maximum is
        // final.
        self.release_below(self.max_ts.saturating_sub(self.lateness), out);
        true
    }

    /// Advances event time without data: a source watermark asserts that
    /// everything at or below `ts` is complete, so it is released.
    pub fn advance(&mut self, ts: Timestamp, out: &mut Vec<Event>) {
        self.max_ts = self.max_ts.max(ts);
        self.release_below(ts.saturating_add(1), out);
    }

    /// Releases every buffered event (end of stream).
    pub fn flush(&mut self, out: &mut Vec<Event>) {
        self.release_below(Timestamp::MAX, out);
    }

    /// Releases all buffered events with `ts < bound`, in order.
    fn release_below(&mut self, bound: Timestamp, out: &mut Vec<Event>) {
        while let Some(&Reverse((ts, seq))) = self.heap.peek() {
            if ts >= bound {
                break;
            }
            self.heap.pop();
            // Heap and pending are inserted in lockstep; a missing entry
            // is a stale key and is simply skipped.
            if let Some(ev) = self.pending.remove(&seq) {
                out.push(ev);
            }
        }
        if bound != Timestamp::MAX {
            self.floor = self.floor.max(bound);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggFunction;
    use crate::engine::AggregationEngine;
    use crate::query::Query;
    use crate::window::WindowSpec;

    #[test]
    fn releases_in_order_under_bounded_disorder() {
        let mut buf = ReorderBuffer::new(50);
        let mut out = Vec::new();
        for ts in [10u64, 5, 30, 20, 80, 60, 110] {
            buf.push(Event::new(ts, 0, ts as f64), &mut out);
        }
        buf.flush(&mut out);
        let seen: Vec<u64> = out.iter().map(|e| e.ts).collect();
        assert_eq!(seen, vec![5, 10, 20, 30, 60, 80, 110]);
        assert_eq!(buf.late_dropped(), 0);
    }

    #[test]
    fn stable_for_equal_timestamps() {
        let mut buf = ReorderBuffer::new(100);
        let mut out = Vec::new();
        for (i, ts) in [(0u32, 10u64), (1, 10), (2, 10)] {
            buf.push(Event::new(ts, i, 0.0), &mut out);
        }
        buf.flush(&mut out);
        assert_eq!(out.iter().map(|e| e.key).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn drops_events_past_allowed_lateness() {
        let mut buf = ReorderBuffer::new(10);
        let mut out = Vec::new();
        buf.push(Event::new(100, 0, 1.0), &mut out);
        // Frontier is 90; an event at 50 is too late.
        assert!(!buf.push(Event::new(50, 0, 2.0), &mut out));
        assert_eq!(buf.late_dropped(), 1);
        // An event at 95 is within lateness.
        assert!(buf.push(Event::new(95, 0, 3.0), &mut out));
        buf.flush(&mut out);
        assert_eq!(out.iter().map(|e| e.ts).collect::<Vec<_>>(), vec![95, 100]);
    }

    #[test]
    fn watermark_advances_release() {
        let mut buf = ReorderBuffer::new(1_000);
        let mut out = Vec::new();
        buf.push(Event::new(10, 0, 1.0), &mut out);
        buf.push(Event::new(20, 0, 2.0), &mut out);
        assert!(out.is_empty(), "still within lateness");
        buf.advance(500, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(buf.buffered(), 0);
    }

    /// A shuffled stream through the buffer + engine produces the same
    /// results as the ordered stream fed directly.
    #[test]
    fn engine_behind_buffer_matches_ordered_run() {
        let queries = || {
            vec![Query::new(
                1,
                WindowSpec::tumbling_time(100).unwrap(),
                AggFunction::Average,
            )]
        };
        let ordered: Vec<Event> = (0..2_000u64)
            .map(|i| Event::new(i, (i % 3) as u32, i as f64))
            .collect();
        // Deterministic bounded shuffle: swap within blocks of 16.
        let mut shuffled = ordered.clone();
        for block in shuffled.chunks_mut(16) {
            block.reverse();
        }

        let mut reference = AggregationEngine::new(queries()).unwrap();
        for ev in &ordered {
            reference.on_event(ev);
        }
        reference.on_watermark(3_000);
        let mut expected = reference.drain_results();

        let mut engine = AggregationEngine::new(queries()).unwrap();
        let mut buf = ReorderBuffer::new(32);
        let mut released = Vec::new();
        for ev in &shuffled {
            buf.push(*ev, &mut released);
            for e in released.drain(..) {
                engine.on_event(&e);
            }
        }
        buf.flush(&mut released);
        for e in released.drain(..) {
            engine.on_event(&e);
        }
        engine.on_watermark(3_000);
        let mut actual = engine.drain_results();

        let key = |r: &crate::query::QueryResult| (r.query, r.window_start, r.key);
        expected.sort_by_key(key);
        actual.sort_by_key(key);
        assert_eq!(expected, actual);
        assert_eq!(buf.late_dropped(), 0);
    }
}
