//! Compiled query-groups (paper Section 4.1).
//!
//! A *query-group* is a set of queries whose partial results can be shared
//! and in which every event is processed exactly once. The query analyzer
//! compiles raw [`Query`] definitions into a [`QueryGroup`]: selections are
//! deduplicated, aggregation functions are lowered to a per-selection
//! operator set, and the group records which punctuation machinery
//! (fixed time, count, session, marker) its slicer must run.

use crate::aggregate::OperatorSet;
use crate::event::MarkerChannel;
use crate::predicate::Predicate;
use crate::query::{Query, QueryId};
use crate::time::DurationMs;
use crate::window::{Measure, WindowKind, WindowSpec};

/// Index of a query-group within an engine.
pub type GroupId = u32;

/// Index of a deduplicated selection within a group.
pub type SelectionId = u32;

/// A deduplicated selection: one predicate plus the union of operators
/// required by every query using it (with sort subsumption applied).
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// The predicate shared by all queries of this selection.
    pub predicate: Predicate,
    /// Operators executed per event for this selection.
    pub operators: OperatorSet,
}

/// A query compiled into its group: the original definition plus the
/// selection it reads from.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledQuery {
    /// Original query definition.
    pub query: Query,
    /// Selection this query's windows aggregate over.
    pub selection: SelectionId,
}

/// How a group executes in a decentralized deployment (Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupExecution {
    /// Decomposable, time-measured: slices are computed on every node and
    /// only partial results travel upward (Section 5.1).
    Decentralized,
    /// Non-decomposable functions: local/intermediate nodes slice and
    /// pre-sort, shipping sorted slice batches; the root finalizes
    /// (Section 5.2).
    RootSorted,
    /// Count-measured windows with decomposable functions: only the root
    /// can terminate count windows, so events are forwarded raw
    /// (Section 5.2).
    RootRaw,
}

/// A compiled query-group, ready to drive a slicer.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryGroup {
    /// Group id within the engine.
    pub id: GroupId,
    /// Member queries.
    pub queries: Vec<CompiledQuery>,
    /// Deduplicated selections (pairwise equal-or-disjoint predicates).
    pub selections: Vec<Selection>,
    /// Decentralized execution mode.
    pub execution: GroupExecution,
}

impl QueryGroup {
    /// Builds a group from member queries and their selection assignment.
    ///
    /// Prefer [`QueryAnalyzer`](crate::engine::QueryAnalyzer), which
    /// derives the grouping; this constructor is for callers that already
    /// know it. `predicates` must be pairwise compatible (identical or
    /// disjoint); this is asserted in debug builds.
    pub fn build(
        id: GroupId,
        members: Vec<(Query, SelectionId)>,
        predicates: Vec<Predicate>,
    ) -> Self {
        #[cfg(debug_assertions)]
        for (i, a) in predicates.iter().enumerate() {
            for b in predicates.iter().skip(i + 1) {
                debug_assert!(
                    a.compatible(b),
                    "incompatible predicates in one group: {a:?} vs {b:?}"
                );
            }
        }
        let mut selections: Vec<Selection> = predicates
            .into_iter()
            .map(|predicate| Selection {
                predicate,
                operators: OperatorSet::EMPTY,
            })
            .collect();
        let mut queries = Vec::with_capacity(members.len());
        for (query, selection) in members {
            selections[selection as usize].operators |= query.operator_set();
            queries.push(CompiledQuery { query, selection });
        }
        for sel in &mut selections {
            sel.operators = sel.operators.subsume_sorts();
        }
        let execution = Self::classify_execution(&queries);
        Self {
            id,
            queries,
            selections,
            execution,
        }
    }

    fn classify_execution(queries: &[CompiledQuery]) -> GroupExecution {
        let any_non_decomposable = queries.iter().any(|cq| !cq.query.is_decomposable());
        let any_count = queries
            .iter()
            .any(|cq| cq.query.window.measure == Measure::Count);
        // Count windows can only be terminated by the root, and sorted
        // slice batches lose the per-event order they need, so raw
        // forwarding dominates the classification.
        if any_count {
            GroupExecution::RootRaw
        } else if any_non_decomposable {
            GroupExecution::RootSorted
        } else {
            GroupExecution::Decentralized
        }
    }

    /// Distinct fixed time-measured window specs in this group, used by the
    /// slicer to precompute punctuations.
    pub fn fixed_time_specs(&self) -> Vec<WindowSpec> {
        let mut specs: Vec<WindowSpec> = Vec::new();
        for cq in &self.queries {
            let w = cq.query.window;
            if w.has_precomputable_puncts() && !specs.contains(&w) {
                specs.push(w);
            }
        }
        specs
    }

    /// Session gaps per session query: `(query index, gap)`.
    pub fn session_queries(&self) -> Vec<(usize, DurationMs)> {
        self.queries
            .iter()
            .enumerate()
            .filter_map(|(i, cq)| cq.query.window.session_gap().map(|g| (i, g)))
            .collect()
    }

    /// Marker channels per user-defined query: `(query index, channel)`.
    pub fn user_defined_queries(&self) -> Vec<(usize, MarkerChannel)> {
        self.queries
            .iter()
            .enumerate()
            .filter_map(|(i, cq)| cq.query.window.marker_channel().map(|c| (i, c)))
            .collect()
    }

    /// Count-measured queries: `(query index, spec)`.
    pub fn count_queries(&self) -> Vec<(usize, WindowSpec)> {
        self.queries
            .iter()
            .enumerate()
            .filter(|(_, cq)| cq.query.window.measure == Measure::Count)
            .map(|(i, cq)| (i, cq.query.window))
            .collect()
    }

    /// Indices of time-measured fixed-size queries.
    pub fn fixed_time_queries(&self) -> Vec<usize> {
        self.queries
            .iter()
            .enumerate()
            .filter(|(_, cq)| cq.query.window.has_precomputable_puncts())
            .map(|(i, _)| i)
            .collect()
    }

    /// Looks up a member query by id.
    pub fn query_index(&self, id: QueryId) -> Option<usize> {
        self.queries.iter().position(|cq| cq.query.id == id)
    }

    /// Whether any member query uses a data-driven (session/user-defined)
    /// window.
    pub fn has_unfixed_windows(&self) -> bool {
        self.queries.iter().any(|cq| {
            matches!(
                cq.query.window.kind,
                WindowKind::Session { .. } | WindowKind::UserDefined { .. }
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AggFunction, OperatorKind};
    use crate::window::WindowSpec;

    fn q(id: QueryId, window: WindowSpec, f: AggFunction) -> Query {
        Query::new(id, window, f)
    }

    #[test]
    fn build_unions_operators_per_selection() {
        let t = WindowSpec::tumbling_time(1000).unwrap();
        let g = QueryGroup::build(
            0,
            vec![
                (q(1, t, AggFunction::Average), 0),
                (q(2, t, AggFunction::Sum), 0),
            ],
            vec![Predicate::True],
        );
        assert_eq!(g.selections.len(), 1);
        assert_eq!(g.selections[0].operators.len(), 2); // sum + count shared
        assert_eq!(g.execution, GroupExecution::Decentralized);
    }

    #[test]
    fn sort_subsumption_applies_per_selection() {
        let t = WindowSpec::tumbling_time(1000).unwrap();
        let g = QueryGroup::build(
            0,
            vec![
                (q(1, t, AggFunction::Max), 0),
                (q(2, t, AggFunction::Quantile(0.9)), 0),
            ],
            vec![Predicate::True],
        );
        assert_eq!(g.selections[0].operators.len(), 1);
        assert!(g.selections[0]
            .operators
            .contains(OperatorKind::NonDecomposableSort));
        assert_eq!(g.execution, GroupExecution::RootSorted);
    }

    #[test]
    fn count_windows_classify_root_raw() {
        let c = WindowSpec::tumbling_count(100).unwrap();
        let g = QueryGroup::build(
            0,
            vec![(q(1, c, AggFunction::Sum), 0)],
            vec![Predicate::True],
        );
        assert_eq!(g.execution, GroupExecution::RootRaw);
        assert_eq!(g.count_queries().len(), 1);
    }

    #[test]
    fn spec_extraction() {
        let t = WindowSpec::tumbling_time(1000).unwrap();
        let s = WindowSpec::sliding_time(2000, 500).unwrap();
        let sess = WindowSpec::session(300).unwrap();
        let ud = WindowSpec::user_defined(2);
        let g = QueryGroup::build(
            0,
            vec![
                (q(1, t, AggFunction::Sum), 0),
                (q(2, t, AggFunction::Count), 0),
                (q(3, s, AggFunction::Sum), 0),
                (q(4, sess, AggFunction::Sum), 0),
                (q(5, ud, AggFunction::Sum), 0),
            ],
            vec![Predicate::True],
        );
        assert_eq!(g.fixed_time_specs().len(), 2); // t deduped
        assert_eq!(g.session_queries(), vec![(3, 300)]);
        assert_eq!(g.user_defined_queries(), vec![(4, 2)]);
        assert_eq!(g.fixed_time_queries(), vec![0, 1, 2]);
        assert!(g.has_unfixed_windows());
        assert_eq!(g.query_index(4), Some(3));
        assert_eq!(g.query_index(99), None);
    }
}
