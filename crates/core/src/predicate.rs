//! Selection predicates and their overlap analysis (paper Section 4.2.3).
//!
//! Queries carry selection predicates such as `WHERE speed > 80` or
//! `WHERE key = 3`. The query analyzer places queries into the same
//! query-group when their predicates are *identical* or *disjoint* —
//! in both cases every event is still evaluated exactly once per slice,
//! because disjoint selections maintain independent partial results.
//! Queries with *partially overlapping* predicates go to different
//! query-groups, because a shared slice could not attribute events
//! unambiguously.

use crate::event::{Event, Key};

/// A selection predicate over event key and value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Predicate {
    /// Accepts every event.
    True,
    /// `WHERE key = k`.
    KeyEquals(Key),
    /// `WHERE value > x` (strict).
    ValueAbove(f64),
    /// `WHERE value < x` (strict).
    ValueBelow(f64),
    /// `WHERE lo <= value <= hi` (inclusive both ends).
    ValueBetween(f64, f64),
}

/// Relationship between two predicates, used for query-group formation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overlap {
    /// Same set of events: results can be shared directly.
    Equal,
    /// No event satisfies both: both can live in one query-group with
    /// independent per-selection partial results.
    Disjoint,
    /// Some but not all events overlap: the queries must go to different
    /// query-groups.
    Partial,
}

impl Predicate {
    /// Evaluates the predicate against an event.
    #[inline]
    pub fn matches(&self, ev: &Event) -> bool {
        match *self {
            Predicate::True => true,
            Predicate::KeyEquals(k) => ev.key == k,
            Predicate::ValueAbove(x) => ev.value > x,
            Predicate::ValueBelow(x) => ev.value < x,
            Predicate::ValueBetween(lo, hi) => ev.value >= lo && ev.value <= hi,
        }
    }

    /// Classifies the overlap between two predicates.
    ///
    /// The analysis is conservative: when equality or disjointness cannot be
    /// proven it returns [`Overlap::Partial`], which only costs sharing
    /// opportunity, never correctness.
    pub fn overlap(&self, other: &Predicate) -> Overlap {
        use Predicate::*;
        if self == other {
            return Overlap::Equal;
        }
        match (*self, *other) {
            // `True` overlaps everything that is satisfiable.
            (True, _) | (_, True) => Overlap::Partial,
            // Distinct keys are disjoint; same key was caught by equality.
            (KeyEquals(a), KeyEquals(b)) => {
                debug_assert_ne!(a, b);
                Overlap::Disjoint
            }
            // Key predicates and value predicates always partially overlap:
            // the key's sub-stream may contain values on either side.
            (KeyEquals(_), _) | (_, KeyEquals(_)) => Overlap::Partial,
            (ValueAbove(a), ValueBelow(b)) | (ValueBelow(b), ValueAbove(a)) => {
                // {v > a} and {v < b} are disjoint iff b <= a... values in
                // (a, inf) vs (-inf, b): disjoint when b <= a (no v has
                // v > a && v < b).
                if b <= a {
                    Overlap::Disjoint
                } else {
                    Overlap::Partial
                }
            }
            (ValueAbove(_), ValueAbove(_)) | (ValueBelow(_), ValueBelow(_)) => Overlap::Partial,
            (ValueBetween(lo, hi), ValueAbove(a)) | (ValueAbove(a), ValueBetween(lo, hi)) => {
                if hi <= a {
                    Overlap::Disjoint
                } else {
                    let _ = lo;
                    Overlap::Partial
                }
            }
            (ValueBetween(lo, hi), ValueBelow(b)) | (ValueBelow(b), ValueBetween(lo, hi)) => {
                if lo >= b {
                    Overlap::Disjoint
                } else {
                    let _ = hi;
                    Overlap::Partial
                }
            }
            (ValueBetween(lo1, hi1), ValueBetween(lo2, hi2)) => {
                if hi1 < lo2 || hi2 < lo1 {
                    Overlap::Disjoint
                } else {
                    Overlap::Partial
                }
            }
        }
    }

    /// Whether this predicate can share a query-group with `other`
    /// (identical or disjoint selections — Section 4.2.3).
    #[inline]
    pub fn compatible(&self, other: &Predicate) -> bool {
        self.overlap(other) != Overlap::Partial
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn ev(key: Key, value: f64) -> Event {
        Event::new(0, key, value)
    }

    #[test]
    fn matches_semantics() {
        assert!(Predicate::True.matches(&ev(0, 0.0)));
        assert!(Predicate::KeyEquals(3).matches(&ev(3, 1.0)));
        assert!(!Predicate::KeyEquals(3).matches(&ev(4, 1.0)));
        assert!(Predicate::ValueAbove(80.0).matches(&ev(0, 80.5)));
        assert!(!Predicate::ValueAbove(80.0).matches(&ev(0, 80.0)));
        assert!(Predicate::ValueBelow(25.0).matches(&ev(0, 24.9)));
        assert!(!Predicate::ValueBelow(25.0).matches(&ev(0, 25.0)));
        assert!(Predicate::ValueBetween(1.0, 2.0).matches(&ev(0, 1.0)));
        assert!(Predicate::ValueBetween(1.0, 2.0).matches(&ev(0, 2.0)));
        assert!(!Predicate::ValueBetween(1.0, 2.0).matches(&ev(0, 2.1)));
    }

    #[test]
    fn identical_predicates_are_equal() {
        assert_eq!(
            Predicate::KeyEquals(1).overlap(&Predicate::KeyEquals(1)),
            Overlap::Equal
        );
        assert_eq!(Predicate::True.overlap(&Predicate::True), Overlap::Equal);
    }

    #[test]
    fn distinct_keys_are_disjoint() {
        assert_eq!(
            Predicate::KeyEquals(1).overlap(&Predicate::KeyEquals(2)),
            Overlap::Disjoint
        );
    }

    #[test]
    fn paper_example_speed_predicates_are_disjoint() {
        // WHERE speed > 80 and WHERE speed < 25 (Section 4.2.3).
        let fast = Predicate::ValueAbove(80.0);
        let slow = Predicate::ValueBelow(25.0);
        assert_eq!(fast.overlap(&slow), Overlap::Disjoint);
        assert!(fast.compatible(&slow));
    }

    #[test]
    fn overlapping_ranges_are_partial() {
        let a = Predicate::ValueAbove(10.0);
        let b = Predicate::ValueBelow(20.0);
        assert_eq!(a.overlap(&b), Overlap::Partial);
        assert!(!a.compatible(&b));
    }

    #[test]
    fn true_vs_selective_is_partial() {
        assert_eq!(
            Predicate::True.overlap(&Predicate::KeyEquals(1)),
            Overlap::Partial
        );
    }

    #[test]
    fn between_overlaps() {
        let mid = Predicate::ValueBetween(10.0, 20.0);
        assert_eq!(mid.overlap(&Predicate::ValueAbove(20.0)), Overlap::Disjoint);
        assert_eq!(mid.overlap(&Predicate::ValueAbove(15.0)), Overlap::Partial);
        assert_eq!(mid.overlap(&Predicate::ValueBelow(10.0)), Overlap::Disjoint);
        assert_eq!(mid.overlap(&Predicate::ValueBelow(12.0)), Overlap::Partial);
        assert_eq!(
            mid.overlap(&Predicate::ValueBetween(21.0, 30.0)),
            Overlap::Disjoint
        );
        assert_eq!(
            mid.overlap(&Predicate::ValueBetween(20.0, 30.0)),
            Overlap::Partial
        );
    }

    #[test]
    fn overlap_is_symmetric() {
        let preds = [
            Predicate::True,
            Predicate::KeyEquals(1),
            Predicate::KeyEquals(2),
            Predicate::ValueAbove(10.0),
            Predicate::ValueBelow(5.0),
            Predicate::ValueBetween(1.0, 4.0),
        ];
        for a in &preds {
            for b in &preds {
                assert_eq!(a.overlap(b), b.overlap(a), "{a:?} vs {b:?}");
            }
        }
    }
}
