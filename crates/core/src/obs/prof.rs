//! Pipeline profiler and flight recorder.
//!
//! The metrics registry counts *what* happened (events, bytes, results);
//! this module attributes *where the time went*: wall time per pipeline
//! stage per lane (a lane is one thread-like execution track — a shard
//! worker, the collector/driver, a cluster node loop, a receiving pump),
//! optional allocation accounting per stage, and a bounded **flight
//! recorder** of periodic [`MetricsSnapshot`] diffs capturing
//! throughput/queue trajectories over a run.
//!
//! # Clock discipline
//!
//! Deterministic paths (the engine, the node state machines) are covered
//! by desis-lint's `no-wallclock` rule: they must not read
//! `Instant::now()` directly, because wall-clock reads there make runs
//! irreproducible. Profiling still needs real time, so every read goes
//! through the injectable [`ProfClock`] facade. The single
//! `Instant::now()` call of the whole subsystem lives in
//! [`ProfClock::wall`] (allowlisted); instrumented call sites only ever
//! see opaque nanosecond readings, and tests inject a
//! [`ProfClock::manual`] clock to make timing assertions exact. Results
//! are *observability output* and never feed back into engine decisions,
//! so determinism of the data path is untouched.
//!
//! # Cost model
//!
//! A [`Scope`] is created only when profiling is enabled: the disabled
//! hot-path cost of [`scope`] is one `Option` check and one relaxed
//! atomic load (the CI overhead gate holds this under 3%). When enabled,
//! a scope costs two clock reads; tallies accumulate in a plain local
//! array per [`ProfHandle`] (no locks, no allocation) and merge into the
//! shared profiler on flush/drop — the same discipline as the trace ring
//! buffers.
//!
//! # Allocation accounting
//!
//! With the `prof-alloc` cargo feature, `alloc::CountingAlloc` can be
//! installed as the global allocator (the `experiments` binary does);
//! every allocation is attributed to the stage active on the allocating
//! thread, giving a per-stage allocs/bytes breakdown in the profile
//! report. Without the feature the accounting compiles away entirely.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use super::{json_escape, names, MetricsRegistry, MetricsSnapshot};

/// Number of pipeline stages (array dimension of per-lane tallies).
pub const STAGE_COUNT: usize = 15;

/// A pipeline stage a [`Scope`] attributes time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Stage {
    /// Query analysis / group construction (engine build, `add_query`).
    Analyzer = 0,
    /// Inlet work: event intake, batching, key-partitioning, sends.
    Ingest = 1,
    /// Reorder-buffer pushes and advances.
    Reorder = 2,
    /// Per-event slicing (the per-shard slicer pipelines).
    Slicer = 3,
    /// Count-query predicate filtering on the shard side.
    CountFilter = 4,
    /// Watermark barrier: waiting for every live shard's frontier.
    Barrier = 5,
    /// Collector-side fixed-window slice merging.
    ShardMerge = 6,
    /// Collector-side unfixed (session/user-defined) merging.
    UnfixedMerge = 7,
    /// Window assembly over merged slices.
    Assemble = 8,
    /// Sequential count-query replay at the collector.
    Replay = 9,
    /// Result draining and canonical sorting.
    Drain = 10,
    /// Source pacing sleeps (cluster locals replaying at stream rate).
    Pace = 11,
    /// Receiving pump: blocking on incoming frames.
    Recv = 12,
    /// Receiving pump: decoding and handling one frame.
    Handler = 13,
    /// A worker blocked on its empty input channel.
    Idle = 14,
}

impl Stage {
    /// Every stage, in index order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Analyzer,
        Stage::Ingest,
        Stage::Reorder,
        Stage::Slicer,
        Stage::CountFilter,
        Stage::Barrier,
        Stage::ShardMerge,
        Stage::UnfixedMerge,
        Stage::Assemble,
        Stage::Replay,
        Stage::Drain,
        Stage::Pace,
        Stage::Recv,
        Stage::Handler,
        Stage::Idle,
    ];

    /// Stable lowercase name used in reports and instrument names.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Analyzer => "analyzer",
            Stage::Ingest => "ingest",
            Stage::Reorder => "reorder",
            Stage::Slicer => "slicer",
            Stage::CountFilter => "count_filter",
            Stage::Barrier => "barrier",
            Stage::ShardMerge => "shard_merge",
            Stage::UnfixedMerge => "unfixed_merge",
            Stage::Assemble => "assemble",
            Stage::Replay => "replay",
            Stage::Drain => "drain",
            Stage::Pace => "pace",
            Stage::Recv => "recv",
            Stage::Handler => "handler",
            Stage::Idle => "idle",
        }
    }
}

/// The injectable time source behind every profiling measurement.
///
/// [`ProfClock::wall`] holds the subsystem's only real clock read;
/// [`ProfClock::manual`] is a shared counter tests advance by hand.
#[derive(Debug, Clone)]
pub enum ProfClock {
    /// Monotonic wall time, reported as nanoseconds since the origin.
    Wall(Instant),
    /// A hand-driven nanosecond counter (deterministic tests).
    Manual(Arc<AtomicU64>),
}

impl ProfClock {
    /// A wall clock originating now. This is the single real clock read
    /// of the profiling subsystem (see the module docs).
    pub fn wall() -> Self {
        ProfClock::Wall(Instant::now())
    }

    /// A manual clock plus the handle that advances it (in nanoseconds).
    pub fn manual() -> (Self, Arc<AtomicU64>) {
        let cell = Arc::new(AtomicU64::new(0));
        (ProfClock::Manual(Arc::clone(&cell)), cell)
    }

    /// Nanoseconds since the clock's origin.
    pub fn now_ns(&self) -> u64 {
        match self {
            ProfClock::Wall(origin) => origin.elapsed().as_nanos() as u64,
            ProfClock::Manual(cell) => cell.load(Ordering::Relaxed),
        }
    }
}

/// Accumulated time and call count of one (lane, stage) cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTally {
    /// Nanoseconds spent inside scopes of this stage.
    pub ns: u64,
    /// Number of scopes entered.
    pub calls: u64,
}

#[derive(Debug)]
struct ProfInner {
    enabled: AtomicBool,
    clock: ProfClock,
    start_ns: AtomicU64,
    end_ns: AtomicU64,
    lanes: Mutex<BTreeMap<String, [StageTally; STAGE_COUNT]>>,
}

/// A shared, cloneable profiler: hands out per-lane [`ProfHandle`]s and
/// aggregates their tallies into a [`ProfileReport`].
#[derive(Debug, Clone)]
pub struct Profiler {
    inner: Arc<ProfInner>,
}

fn lock_lanes(
    m: &Mutex<BTreeMap<String, [StageTally; STAGE_COUNT]>>,
) -> std::sync::MutexGuard<'_, BTreeMap<String, [StageTally; STAGE_COUNT]>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

static GLOBAL_PROF: OnceLock<Profiler> = OnceLock::new();

impl Profiler {
    /// An enabled profiler reading `clock`.
    pub fn new(clock: ProfClock) -> Self {
        let start = clock.now_ns();
        Profiler {
            inner: Arc::new(ProfInner {
                enabled: AtomicBool::new(true),
                clock,
                start_ns: AtomicU64::new(start),
                end_ns: AtomicU64::new(0),
                lanes: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// An installed-but-disabled profiler: handles exist and every
    /// [`scope`] call takes the disabled fast path (the configuration
    /// the CI overhead gate measures).
    pub fn disabled(clock: ProfClock) -> Self {
        let p = Self::new(clock);
        p.set_enabled(false);
        p
    }

    /// Installs `self` as the process-global profiler (first call wins)
    /// for harnesses that cannot thread one through their plumbing.
    /// Returns the installed profiler.
    pub fn install_global(self) -> &'static Profiler {
        GLOBAL_PROF.get_or_init(|| self)
    }

    /// The process-global profiler, if one was installed.
    pub fn global() -> Option<&'static Profiler> {
        GLOBAL_PROF.get()
    }

    /// Whether scopes currently measure.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turns measurement on or off (handles stay valid either way).
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// The profiler's clock.
    pub fn clock(&self) -> &ProfClock {
        &self.inner.clock
    }

    /// Marks the start of the measured session (resets the wall span;
    /// accumulated tallies are kept).
    pub fn begin(&self) {
        self.inner
            .start_ns
            .store(self.inner.clock.now_ns(), Ordering::Relaxed);
        self.inner.end_ns.store(0, Ordering::Relaxed);
    }

    /// Marks the end of the measured session.
    pub fn end(&self) {
        self.inner
            .end_ns
            .store(self.inner.clock.now_ns(), Ordering::Relaxed);
    }

    /// Wall nanoseconds of the measured session (`begin` to `end`, or to
    /// now while the session is still open).
    pub fn wall_ns(&self) -> u64 {
        let start = self.inner.start_ns.load(Ordering::Relaxed);
        let end = self.inner.end_ns.load(Ordering::Relaxed);
        let end = if end == 0 {
            self.inner.clock.now_ns()
        } else {
            end
        };
        end.saturating_sub(start)
    }

    /// Creates a handle attributing its scopes to `lane` (e.g.
    /// `"shard0"`, `"driver"`, `"node1"`, `"root"`). Handles with the
    /// same lane merge additively.
    pub fn handle(&self, lane: &str) -> ProfHandle {
        ProfHandle {
            prof: self.clone(),
            lane: lane.to_string(),
            local: [StageTally::default(); STAGE_COUNT],
            recorded_ns: 0,
        }
    }

    fn absorb(&self, lane: &str, local: &[StageTally; STAGE_COUNT]) {
        if local.iter().all(|t| t.calls == 0) {
            return;
        }
        let mut lanes = lock_lanes(&self.inner.lanes);
        let cells = lanes
            .entry(lane.to_string())
            .or_insert([StageTally::default(); STAGE_COUNT]);
        for (cell, add) in cells.iter_mut().zip(local) {
            cell.ns += add.ns;
            cell.calls += add.calls;
        }
    }

    /// Freezes the per-lane stage tallies into a report. Flush (or drop)
    /// outstanding handles first; the wall span is `begin`→`end`.
    pub fn report(&self) -> ProfileReport {
        let lanes = lock_lanes(&self.inner.lanes)
            .iter()
            .map(|(lane, cells)| LaneReport {
                lane: lane.clone(),
                total_ns: cells.iter().map(|t| t.ns).sum(),
                stages: Stage::ALL
                    .iter()
                    .zip(cells.iter())
                    .filter(|(_, t)| t.calls > 0)
                    .map(|(s, t)| StageLine {
                        stage: s.name(),
                        ns: t.ns,
                        calls: t.calls,
                    })
                    .collect(),
            })
            .collect();
        ProfileReport {
            wall_ns: self.wall_ns(),
            lanes,
            #[cfg(feature = "prof-alloc")]
            alloc: alloc::lines(),
        }
    }

    /// Publishes cumulative per-lane per-stage counters
    /// (`prof.<lane>.<stage>_ns` / `_calls`) into `registry`.
    /// Idempotent: counters are raised to the cumulative totals.
    pub fn publish(&self, registry: &MetricsRegistry) {
        let lanes = lock_lanes(&self.inner.lanes);
        for (lane, cells) in lanes.iter() {
            for (stage, tally) in Stage::ALL.iter().zip(cells.iter()) {
                if tally.calls == 0 {
                    continue;
                }
                registry
                    .counter(&names::prof_stage_ns(lane, stage.name()))
                    .raise_to(tally.ns);
                registry
                    .counter(&names::prof_stage_calls(lane, stage.name()))
                    .raise_to(tally.calls);
            }
        }
    }
}

/// A per-lane tally accumulator: scopes write a plain local array, which
/// merges into the shared profiler on [`ProfHandle::flush`] or drop.
#[derive(Debug)]
pub struct ProfHandle {
    prof: Profiler,
    lane: String,
    local: [StageTally; STAGE_COUNT],
    /// Monotone total of nanoseconds attributed through this handle —
    /// the nesting watermark that lets an outer manual span subtract
    /// whatever inner spans recorded during it (self-time semantics).
    recorded_ns: u64,
}

/// An opaque stamp opening a manual stage span (see
/// [`ProfHandle::stamp`]).
#[derive(Debug, Clone, Copy)]
pub struct Stamp {
    start_ns: u64,
    nested_ns: u64,
}

impl ProfHandle {
    /// The lane this handle attributes to.
    pub fn lane(&self) -> &str {
        &self.lane
    }

    /// Whether the owning profiler currently measures.
    pub fn enabled(&self) -> bool {
        self.prof.enabled()
    }

    /// Clock stamp opening a manual (non-RAII) stage span, or `None`
    /// while the profiler is disabled. Close it with
    /// [`ProfHandle::record_since`]. The manual pair serves call sites
    /// where an RAII [`Scope`] would borrow-conflict with the
    /// instrumented structure (e.g. `&mut self` methods holding the
    /// handle as a field), and manual spans may nest: the outer span is
    /// charged only its *self* time — anything inner spans recorded
    /// through the same handle in between is subtracted.
    pub fn stamp(&self) -> Option<Stamp> {
        if self.prof.enabled() {
            Some(Stamp {
                start_ns: self.prof.inner.clock.now_ns(),
                nested_ns: self.recorded_ns,
            })
        } else {
            None
        }
    }

    /// Attributes the self time since `stamp` (elapsed minus whatever
    /// nested spans recorded through this handle) to `stage`, counting
    /// one call.
    pub fn record_since(&mut self, stage: Stage, stamp: Stamp) {
        let end_ns = self.prof.inner.clock.now_ns();
        let nested = self.recorded_ns.saturating_sub(stamp.nested_ns);
        let span = end_ns.saturating_sub(stamp.start_ns).saturating_sub(nested);
        let cell = &mut self.local[stage as usize];
        cell.ns += span;
        cell.calls += 1;
        self.recorded_ns += span;
    }

    /// Merges the local tallies into the shared profiler and clears
    /// them. Called automatically on drop.
    pub fn flush(&mut self) {
        let local = std::mem::replace(&mut self.local, [StageTally::default(); STAGE_COUNT]);
        self.prof.absorb(&self.lane, &local);
    }
}

impl Drop for ProfHandle {
    fn drop(&mut self) {
        self.flush();
    }
}

impl Clone for ProfHandle {
    /// A fresh handle on the same lane. Local (unflushed) tallies stay
    /// with the original — they flush exactly once from there — so a
    /// cloned holder merges additively instead of double-counting.
    fn clone(&self) -> Self {
        self.prof.handle(&self.lane)
    }
}

/// Opens a stage scope on `handle` if one exists and profiling is
/// enabled; the returned guard attributes the elapsed time on drop.
///
/// This is the instrumented hot-path entry point: with no handle or a
/// disabled profiler it costs an `Option` check plus one relaxed load.
#[inline]
pub fn scope<'a>(handle: &'a mut Option<ProfHandle>, stage: Stage) -> Option<Scope<'a>> {
    let h = handle.as_mut()?;
    if !h.prof.enabled() {
        return None;
    }
    Some(Scope::enter(h, stage))
}

/// An RAII stage timer: measures from creation to drop and adds the
/// span to its handle's (lane, stage) tally.
#[derive(Debug)]
pub struct Scope<'a> {
    handle: &'a mut ProfHandle,
    stage: Stage,
    start_ns: u64,
    #[cfg(feature = "prof-alloc")]
    prev_tag: u8,
}

impl<'a> Scope<'a> {
    fn enter(handle: &'a mut ProfHandle, stage: Stage) -> Self {
        let start_ns = handle.prof.inner.clock.now_ns();
        #[cfg(feature = "prof-alloc")]
        let prev_tag = set_active_stage(stage as u8);
        Scope {
            handle,
            stage,
            start_ns,
            #[cfg(feature = "prof-alloc")]
            prev_tag,
        }
    }
}

impl Drop for Scope<'_> {
    fn drop(&mut self) {
        let end_ns = self.handle.prof.inner.clock.now_ns();
        let span = end_ns.saturating_sub(self.start_ns);
        let cell = &mut self.handle.local[self.stage as usize];
        cell.ns += span;
        cell.calls += 1;
        self.handle.recorded_ns += span;
        #[cfg(feature = "prof-alloc")]
        set_active_stage(self.prev_tag);
    }
}

#[cfg(feature = "prof-alloc")]
std::thread_local! {
    /// Stage active on this thread, as `Stage as u8`; `u8::MAX` = none.
    /// Const-initialized so the first read cannot recurse into the
    /// counting allocator.
    static ACTIVE_STAGE: std::cell::Cell<u8> = const { std::cell::Cell::new(u8::MAX) };
}

#[cfg(feature = "prof-alloc")]
fn set_active_stage(tag: u8) -> u8 {
    ACTIVE_STAGE.try_with(|c| c.replace(tag)).unwrap_or(u8::MAX)
}

/// Per-stage allocation accounting, active when the `prof-alloc` cargo
/// feature is on *and* [`alloc::CountingAlloc`] is installed as the
/// global allocator (binaries opt in; libraries never install one).
#[cfg(feature = "prof-alloc")]
pub mod alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    use super::{AllocLine, Stage, STAGE_COUNT};

    /// Tally slots: one per stage plus a final slot for allocations made
    /// outside any profiled scope.
    pub const SLOTS: usize = STAGE_COUNT + 1;

    static ALLOCS: [AtomicU64; SLOTS] = [const { AtomicU64::new(0) }; SLOTS];
    static BYTES: [AtomicU64; SLOTS] = [const { AtomicU64::new(0) }; SLOTS];

    fn slot() -> usize {
        let tag = super::ACTIVE_STAGE.try_with(|c| c.get()).unwrap_or(u8::MAX);
        (tag as usize).min(STAGE_COUNT)
    }

    fn record(size: usize) {
        let s = slot();
        ALLOCS[s].fetch_add(1, Ordering::Relaxed);
        BYTES[s].fetch_add(size as u64, Ordering::Relaxed);
    }

    /// A [`System`]-backed global allocator counting allocations and
    /// bytes against the stage active on the allocating thread.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct CountingAlloc;

    // SAFETY: delegates every operation to `System` unchanged; the
    // accounting is two relaxed atomic adds with no allocation.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            record(layout.size());
            unsafe { System.alloc(layout) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            record(layout.size());
            unsafe { System.alloc_zeroed(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            record(new_size);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    /// Cumulative `(allocations, bytes)` per slot (stage order, then the
    /// untagged slot).
    pub fn totals() -> [(u64, u64); SLOTS] {
        let mut out = [(0, 0); SLOTS];
        for (i, cell) in out.iter_mut().enumerate() {
            *cell = (
                ALLOCS[i].load(Ordering::Relaxed),
                BYTES[i].load(Ordering::Relaxed),
            );
        }
        out
    }

    /// Zeroes every slot (run separation in benchmarks).
    pub fn reset() {
        for i in 0..SLOTS {
            ALLOCS[i].store(0, Ordering::Relaxed);
            BYTES[i].store(0, Ordering::Relaxed);
        }
    }

    pub(super) fn lines() -> Vec<AllocLine> {
        let totals = totals();
        let mut out = Vec::new();
        for (i, (allocs, bytes)) in totals.iter().enumerate() {
            if *allocs == 0 {
                continue;
            }
            out.push(AllocLine {
                stage: if i < STAGE_COUNT {
                    Stage::ALL[i].name()
                } else {
                    "untagged"
                },
                allocs: *allocs,
                bytes: *bytes,
            });
        }
        out
    }
}

/// One stage row of a lane's self-time table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageLine {
    /// Stage name ([`Stage::name`]).
    pub stage: &'static str,
    /// Nanoseconds of self time.
    pub ns: u64,
    /// Scopes entered.
    pub calls: u64,
}

/// One lane's stage breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneReport {
    /// Lane label.
    pub lane: String,
    /// Sum of all stage self times.
    pub total_ns: u64,
    /// Per-stage rows, stage order, zero-call rows omitted.
    pub stages: Vec<StageLine>,
}

/// Per-stage allocation totals (only populated under `prof-alloc`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocLine {
    /// Stage name, or `"untagged"` for allocations outside any scope.
    pub stage: &'static str,
    /// Allocation count.
    pub allocs: u64,
    /// Bytes requested.
    pub bytes: u64,
}

/// A frozen profile: wall span, per-lane stage tables, and (under
/// `prof-alloc`) per-stage allocation totals.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Wall nanoseconds of the measured session.
    pub wall_ns: u64,
    /// Per-lane breakdowns, lane order.
    pub lanes: Vec<LaneReport>,
    /// Per-stage allocation totals.
    #[cfg(feature = "prof-alloc")]
    pub alloc: Vec<AllocLine>,
}

impl ProfileReport {
    /// Fraction of the wall span accounted for by the busiest lane
    /// (the acceptance metric: a lane that spans the run should cover
    /// ≥ 0.9 of measured wall time). 0 when nothing was measured.
    pub fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        let best = self.lanes.iter().map(|l| l.total_ns).max().unwrap_or(0);
        best as f64 / self.wall_ns as f64
    }

    /// Serializes the report (plus an optional flight-recorder timeline)
    /// as a self-contained JSON object.
    pub fn to_json(&self, flight: Option<&FlightRecorder>) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"wall_ns\":{},\"coverage\":{:.4},\"lanes\":{{",
            self.wall_ns,
            self.coverage()
        );
        for (i, lane) in self.lanes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"total_ns\":{},\"stages\":{{",
                json_escape(&lane.lane),
                lane.total_ns
            );
            for (j, s) in lane.stages.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\"{}\":{{\"ns\":{},\"calls\":{}}}",
                    s.stage, s.ns, s.calls
                );
            }
            out.push_str("}}");
        }
        out.push('}');
        #[cfg(feature = "prof-alloc")]
        {
            out.push_str(",\"alloc\":{");
            for (i, a) in self.alloc.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\"{}\":{{\"allocs\":{},\"bytes\":{}}}",
                    a.stage, a.allocs, a.bytes
                );
            }
            out.push('}');
        }
        match flight {
            Some(f) => {
                out.push_str(",\"flight\":");
                f.write_json(&mut out);
            }
            None => out.push_str(",\"flight\":[]"),
        }
        out.push('}');
        out
    }

    /// Renders the report as a human-readable table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let wall_ms = self.wall_ns as f64 / 1e6;
        let _ = writeln!(
            out,
            "profile: wall {:.1} ms, coverage {:.1}% (busiest lane / wall)",
            wall_ms,
            self.coverage() * 100.0
        );
        for lane in &self.lanes {
            let _ = writeln!(
                out,
                "  lane {:<14} total {:>10.2} ms",
                lane.lane,
                lane.total_ns as f64 / 1e6
            );
            for s in &lane.stages {
                let pct = if self.wall_ns > 0 {
                    s.ns as f64 * 100.0 / self.wall_ns as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "    {:<13} {:>10.2} ms  {:>5.1}%  {:>10} calls",
                    s.stage,
                    s.ns as f64 / 1e6,
                    pct,
                    s.calls
                );
            }
        }
        #[cfg(feature = "prof-alloc")]
        for a in &self.alloc {
            let _ = writeln!(
                out,
                "  alloc {:<13} {:>10} allocs  {:>12} bytes",
                a.stage, a.allocs, a.bytes
            );
        }
        out
    }
}

/// One flight-recorder frame: the registry delta since the previous
/// frame, stamped by the profiler clock.
#[derive(Debug, Clone)]
pub struct FlightFrame {
    /// Clock reading at the frame.
    pub at_ns: u64,
    /// Counter deltas since the previous frame.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels at the frame.
    pub gauges: BTreeMap<String, i64>,
}

/// A bounded ring of periodic [`MetricsSnapshot`] diffs: the trajectory
/// of throughput/queue metrics over a run, kept small enough to always
/// be on (drop-oldest past `capacity` frames).
#[derive(Debug)]
pub struct FlightRecorder {
    clock: ProfClock,
    capacity: usize,
    prev: Option<MetricsSnapshot>,
    frames: std::collections::VecDeque<FlightFrame>,
    /// Frames dropped by the ring bound.
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder stamping frames with `clock`, retaining at most
    /// `capacity` frames (clamped to ≥ 1).
    pub fn new(clock: ProfClock, capacity: usize) -> Self {
        FlightRecorder {
            clock,
            capacity: capacity.max(1),
            prev: None,
            frames: std::collections::VecDeque::new(),
            dropped: 0,
        }
    }

    /// Samples `registry`: the first tick only baselines, every later
    /// tick appends one frame holding the delta since the previous tick.
    pub fn tick(&mut self, registry: &MetricsRegistry) {
        let snap = registry.snapshot();
        let at_ns = self.clock.now_ns();
        if let Some(prev) = &self.prev {
            let diff = snap.diff(prev);
            self.frames.push_back(FlightFrame {
                at_ns,
                counters: diff.counters.into_iter().filter(|(_, v)| *v > 0).collect(),
                gauges: diff.gauges,
            });
            if self.frames.len() > self.capacity {
                self.frames.pop_front();
                self.dropped += 1;
            }
        }
        self.prev = Some(snap);
    }

    /// Recorded frames, oldest first.
    pub fn frames(&self) -> &std::collections::VecDeque<FlightFrame> {
        &self.frames
    }

    /// Frames dropped by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Serializes the timeline as a JSON array of frames.
    pub fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, f) in self.frames.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"at_ms\":{:.3},\"counters\":{{",
                f.at_ns as f64 / 1e6
            );
            for (j, (name, v)) in f.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{v}", json_escape(name));
            }
            out.push_str("},\"gauges\":{");
            for (j, (name, v)) in f.gauges.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{v}", json_escape(name));
            }
            out.push_str("}}");
        }
        out.push(']');
    }

    /// Extracts Perfetto counter tracks from the timeline: one sampled
    /// series per instrument whose name starts with any of `prefixes`
    /// (counters report per-frame deltas, gauges report levels), as
    /// `(name, [(ts_us, value)])` pairs for
    /// [`crate::obs::trace::TraceTimeline::to_chrome_json_with`].
    pub fn counter_tracks(&self, prefixes: &[&str]) -> Vec<(String, Vec<(u64, f64)>)> {
        let mut tracks: BTreeMap<String, Vec<(u64, f64)>> = BTreeMap::new();
        for f in &self.frames {
            let ts_us = f.at_ns / 1_000;
            for (name, v) in &f.counters {
                if prefixes.iter().any(|p| name.starts_with(p)) {
                    tracks
                        .entry(name.clone())
                        .or_default()
                        .push((ts_us, *v as f64));
                }
            }
            for (name, v) in &f.gauges {
                if prefixes.iter().any(|p| name.starts_with(p)) {
                    tracks
                        .entry(name.clone())
                        .or_default()
                        .push((ts_us, *v as f64));
                }
            }
        }
        tracks.into_iter().collect()
    }
}

/// A background thread ticking a [`FlightRecorder`] against a registry
/// at a fixed period — for runs (cluster figures) whose driver loop has
/// no natural barrier to tick from.
#[derive(Debug)]
pub struct FlightSampler {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<FlightRecorder>>,
}

impl FlightSampler {
    /// Spawns a sampler ticking `registry` every `period` until
    /// [`FlightSampler::finish`], retaining `capacity` frames. Falls
    /// back to an inert sampler (empty timeline) if the thread cannot
    /// spawn. The registry is anything that dereferences to one from the
    /// sampler thread: an `Arc<MetricsRegistry>` or the `&'static`
    /// process-global registry.
    pub fn spawn(
        registry: impl std::ops::Deref<Target = MetricsRegistry> + Send + 'static,
        clock: ProfClock,
        period: Duration,
        capacity: usize,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("desis-flight".to_string())
            .spawn(move || {
                let mut rec = FlightRecorder::new(clock, capacity);
                rec.tick(&registry);
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    rec.tick(&registry);
                }
                rec
            })
            .ok();
        FlightSampler { stop, thread }
    }

    /// Stops the sampler and returns the recorded timeline.
    pub fn finish(mut self) -> FlightRecorder {
        self.stop.store(true, Ordering::Relaxed);
        match self.thread.take() {
            Some(t) => t
                .join()
                .unwrap_or_else(|_| FlightRecorder::new(ProfClock::wall(), 1)),
            None => FlightRecorder::new(ProfClock::wall(), 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_scopes_accumulate_exact_time() {
        let (clock, tick) = ProfClock::manual();
        let prof = Profiler::new(clock);
        prof.begin();
        let mut handle = Some(prof.handle("driver"));
        {
            let _s = scope(&mut handle, Stage::Slicer);
            tick.fetch_add(500, Ordering::Relaxed);
        }
        {
            let _s = scope(&mut handle, Stage::Slicer);
            tick.fetch_add(250, Ordering::Relaxed);
        }
        {
            let _s = scope(&mut handle, Stage::Assemble);
            tick.fetch_add(250, Ordering::Relaxed);
        }
        prof.end();
        drop(handle);
        let report = prof.report();
        assert_eq!(report.wall_ns, 1_000);
        assert_eq!(report.lanes.len(), 1);
        let lane = &report.lanes[0];
        assert_eq!(lane.lane, "driver");
        assert_eq!(lane.total_ns, 1_000);
        let slicer = lane.stages.iter().find(|s| s.stage == "slicer").unwrap();
        assert_eq!(slicer.ns, 750);
        assert_eq!(slicer.calls, 2);
        assert!((report.coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disabled_profiler_scopes_are_noops() {
        let (clock, tick) = ProfClock::manual();
        let prof = Profiler::disabled(clock);
        let mut handle = Some(prof.handle("driver"));
        {
            let s = scope(&mut handle, Stage::Slicer);
            assert!(s.is_none());
            tick.fetch_add(100, Ordering::Relaxed);
        }
        drop(handle);
        assert!(prof.report().lanes.is_empty());
        let mut none: Option<ProfHandle> = None;
        assert!(scope(&mut none, Stage::Slicer).is_none());
    }

    #[test]
    fn nested_manual_spans_record_self_time() {
        let (clock, tick) = ProfClock::manual();
        let prof = Profiler::new(clock);
        let mut h = prof.handle("driver");
        let outer = h.stamp().unwrap();
        tick.fetch_add(100, Ordering::Relaxed);
        let inner = h.stamp().unwrap();
        tick.fetch_add(400, Ordering::Relaxed);
        h.record_since(Stage::ShardMerge, inner);
        tick.fetch_add(100, Ordering::Relaxed);
        h.record_since(Stage::Barrier, outer);
        h.flush();
        let report = prof.report();
        let lane = &report.lanes[0];
        let get = |name: &str| lane.stages.iter().find(|s| s.stage == name).unwrap().ns;
        assert_eq!(get("shard_merge"), 400);
        assert_eq!(get("barrier"), 200, "outer span must exclude nested time");
        assert_eq!(lane.total_ns, 600);
    }

    #[test]
    fn handles_on_the_same_lane_merge_additively() {
        let (clock, tick) = ProfClock::manual();
        let prof = Profiler::new(clock);
        let mut a = Some(prof.handle("driver"));
        let mut b = Some(prof.handle("driver"));
        {
            let _s = scope(&mut a, Stage::Ingest);
            tick.fetch_add(10, Ordering::Relaxed);
        }
        {
            let _s = scope(&mut b, Stage::Ingest);
            tick.fetch_add(30, Ordering::Relaxed);
        }
        drop(a);
        drop(b);
        let report = prof.report();
        let ingest = report.lanes[0]
            .stages
            .iter()
            .find(|s| s.stage == "ingest")
            .unwrap();
        assert_eq!(ingest.ns, 40);
        assert_eq!(ingest.calls, 2);
    }

    #[test]
    fn publish_writes_prof_counters() {
        let (clock, tick) = ProfClock::manual();
        let prof = Profiler::new(clock);
        let mut h = Some(prof.handle("shard0"));
        {
            let _s = scope(&mut h, Stage::Reorder);
            tick.fetch_add(123, Ordering::Relaxed);
        }
        h.as_mut().unwrap().flush();
        let registry = MetricsRegistry::new();
        prof.publish(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["prof.shard0.reorder_ns"], 123);
        assert_eq!(snap.counters["prof.shard0.reorder_calls"], 1);
        // Idempotent republish.
        prof.publish(&registry);
        assert_eq!(registry.snapshot().counters["prof.shard0.reorder_ns"], 123);
    }

    #[test]
    fn report_json_is_well_formed() {
        let (clock, tick) = ProfClock::manual();
        let prof = Profiler::new(clock);
        prof.begin();
        let mut h = Some(prof.handle("driver"));
        {
            let _s = scope(&mut h, Stage::Barrier);
            tick.fetch_add(1_000, Ordering::Relaxed);
        }
        prof.end();
        drop(h);
        let json = prof.report().to_json(None);
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"wall_ns\":1000"), "{json}");
        assert!(json.contains("\"barrier\""), "{json}");
        assert!(json.contains("\"flight\":[]"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let table = prof.report().to_table();
        assert!(table.contains("barrier"), "{table}");
        assert!(table.contains("coverage"), "{table}");
    }

    #[test]
    fn flight_recorder_frames_hold_deltas_and_ring_bounds() {
        let (clock, tick) = ProfClock::manual();
        let registry = MetricsRegistry::new();
        let mut rec = FlightRecorder::new(clock, 3);
        registry.counter("events").add(10);
        rec.tick(&registry); // baseline, no frame
        assert!(rec.frames().is_empty());
        for i in 0..5u64 {
            registry.counter("events").add(100 + i);
            registry.gauge("depth").set(i as i64);
            tick.fetch_add(1_000_000, Ordering::Relaxed);
            rec.tick(&registry);
        }
        assert_eq!(rec.frames().len(), 3, "ring bound");
        assert_eq!(rec.dropped(), 2);
        let last = rec.frames().back().unwrap();
        assert_eq!(last.counters["events"], 104);
        assert_eq!(last.gauges["depth"], 4);
        let mut json = String::new();
        rec.write_json(&mut json);
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"events\":104"), "{json}");
        let tracks = rec.counter_tracks(&["ev"]);
        assert_eq!(tracks.len(), 1);
        assert_eq!(tracks[0].0, "events");
        assert_eq!(tracks[0].1.len(), 3);
        assert!(rec.counter_tracks(&["nomatch."]).is_empty());
    }

    #[test]
    fn wall_clock_advances() {
        let prof = Profiler::new(ProfClock::wall());
        prof.begin();
        let mut h = Some(prof.handle("x"));
        {
            let _s = scope(&mut h, Stage::Idle);
            std::thread::sleep(Duration::from_millis(2));
        }
        prof.end();
        drop(h);
        let report = prof.report();
        assert!(report.wall_ns >= 1_000_000, "wall {}", report.wall_ns);
        let idle = &report.lanes[0].stages[0];
        assert_eq!(idle.stage, "idle");
        assert!(idle.ns >= 1_000_000);
    }

    #[test]
    fn flight_sampler_collects_in_background() {
        let registry = Arc::new(MetricsRegistry::new());
        let sampler = FlightSampler::spawn(
            Arc::clone(&registry),
            ProfClock::wall(),
            Duration::from_millis(1),
            1024,
        );
        // Spread increments across many sampler periods so some land
        // after the baseline tick regardless of thread scheduling.
        for _ in 0..25 {
            registry.counter("ticks").add(1);
            std::thread::sleep(Duration::from_millis(2));
        }
        let rec = sampler.finish();
        assert!(!rec.frames().is_empty());
        let total: u64 = rec
            .frames()
            .iter()
            .map(|f| f.counters.get("ticks").copied().unwrap_or(0))
            .sum();
        assert!(total >= 1, "no counter deltas observed");
        assert!(total <= 25);
    }

    #[test]
    fn stage_names_are_distinct_and_indexed() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), STAGE_COUNT);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), STAGE_COUNT, "duplicate stage name");
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(*s as usize, i, "ALL out of index order");
        }
    }
}
