//! Canonical metric and trace instrument names.
//!
//! Every counter, gauge, or histogram name emitted anywhere in the
//! workspace is declared here — either as a `const` (fixed names) or as a
//! builder function (names parameterized by node id, role, query, or
//! stage). `desis-lint`'s `metric-name-constants` rule rejects inline
//! string literals that look like metric names anywhere else, so an
//! emitter and the dashboard/test code that reads its snapshot can never
//! drift apart: both must reference this module.
//!
//! Naming scheme (dotted paths, lowercase with underscores):
//!
//! * `net.recovery.*` — recovery-protocol transitions ([`crate::obs`]).
//! * `net.fault.*` — injected faults.
//! * `net.<role>.*` — per-pump ingress instrumentation (`role` is
//!   `root` / `intermediate`).
//! * `net.node<id>.*` — per-node egress link counters.
//! * `engine.*` — engine-side counters and latency histograms.
//! * `trace.*` — causal-tracing stage histograms and drop counters.
//! * `prof.*` — profiler per-lane per-stage self-time counters
//!   ([`crate::obs::prof`]).
//! * `cluster.*` — whole-run aggregates published by the cluster driver.

// --- net.recovery.* ---------------------------------------------------

/// Sequence gaps detected by receiving pumps.
pub const RECOVERY_GAPS: &str = "net.recovery.gaps";
/// NACKs sent, including re-sends.
pub const RECOVERY_NACKS: &str = "net.recovery.nacks";
/// Redelivered frames discarded.
pub const RECOVERY_DUPLICATES_DROPPED: &str = "net.recovery.duplicates_dropped";
/// Gaps closed by retransmission.
pub const RECOVERY_RECOVERED: &str = "net.recovery.recovered";
/// Children lost for good and flushed on their behalf.
pub const RECOVERY_LOST: &str = "net.recovery.lost";
/// Healthy→Suspect transitions.
pub const RECOVERY_SUSPECTS: &str = "net.recovery.suspects";
/// Suspect→Healthy transitions.
pub const RECOVERY_SUSPECT_CLEARED: &str = "net.recovery.suspect_cleared";

// --- net.fault.* ------------------------------------------------------

/// Frames dropped by injection.
pub const FAULT_DROPPED: &str = "net.fault.dropped";
/// Frames duplicated by injection.
pub const FAULT_DUPLICATED: &str = "net.fault.duplicated";
/// Frames corrupted by injection.
pub const FAULT_CORRUPTED: &str = "net.fault.corrupted";
/// Frames delayed by injection.
pub const FAULT_DELAYED: &str = "net.fault.delayed";
/// Frames dropped by a partition window.
pub const FAULT_PARTITIONED: &str = "net.fault.partitioned";
/// Nodes crashed by the plan.
pub const FAULT_CRASHES: &str = "net.fault.crashes";
/// Nodes stalled by the plan.
pub const FAULT_STALLS: &str = "net.fault.stalls";

// --- message tags (shared by the wire layer and per-tag counters) -----

/// Tag of raw event batches.
pub const TAG_EVENTS: &str = "events";
/// Tag of per-slice partials.
pub const TAG_SLICE: &str = "slice";
/// Tag of per-window partials (Disco protocol).
pub const TAG_WINDOW_PARTIALS: &str = "window-partials";
/// Tag of watermark control messages.
pub const TAG_WATERMARK: &str = "watermark";
/// Tag of end-of-stream control messages.
pub const TAG_FLUSH: &str = "flush";
/// Every known message tag, in wire-enum order. Per-tag pump counters
/// iterate this list, so a tag added to the wire enum without a counter
/// shows up as `other` in snapshots rather than silently drifting.
pub const MSG_TAGS: [&str; 5] = [
    TAG_EVENTS,
    TAG_SLICE,
    TAG_WINDOW_PARTIALS,
    TAG_WATERMARK,
    TAG_FLUSH,
];
/// Catch-all tag for messages without a dedicated per-tag counter.
pub const TAG_OTHER: &str = "other";

// --- net.<role>.* (per-pump ingress) ----------------------------------

/// Payload bytes received by `role`'s pump.
pub fn ingress_bytes(role: &str) -> String {
    format!("net.{role}.ingress_bytes")
}

/// Messages of `tag` received by `role`'s pump.
pub fn ingress_msgs(role: &str, tag: &str) -> String {
    format!("net.{role}.msgs.{tag}")
}

/// High-water inbound queue depth of `role`'s pump.
pub fn queue_depth_max(role: &str) -> String {
    format!("net.{role}.queue_depth_max")
}

/// Live inbound queue depth of `role`'s pump (sampled by the flight
/// recorder; `queue_depth_max` keeps the high water).
pub fn queue_depth(role: &str) -> String {
    format!("net.{role}.queue_depth")
}

/// Undecodable frames seen by `role`'s pump.
pub fn decode_errors(role: &str) -> String {
    format!("net.{role}.decode_errors")
}

/// High-water pending-merge count at `role`.
pub fn merge_pending_max(role: &str) -> String {
    format!("net.{role}.merge_pending_max")
}

/// Watermark advances that left merges waiting for sibling streams.
pub fn merge_stalls(role: &str) -> String {
    format!("net.{role}.merge_stalls")
}

// --- net.node<id>.* (per-node egress) ---------------------------------

/// Payload bytes sent on `node`'s uplink.
pub fn egress_bytes(node: u32) -> String {
    format!("net.node{node}.egress_bytes")
}

/// Messages sent on `node`'s uplink.
pub fn egress_msgs(node: u32) -> String {
    format!("net.node{node}.egress_msgs")
}

// --- engine.* ---------------------------------------------------------

/// Per-query result-latency histogram recorded at window assembly.
pub fn engine_result_latency_us(query: u64) -> String {
    format!("engine.result_latency_us.q{query}")
}

/// Shard workers of the parallel engine that panicked and were degraded
/// (their in-flight contributions are force-released without the shard).
pub const ENGINE_SHARD_PANICS: &str = "engine.shard_panics";

/// Events routed to one shard worker of the parallel engine.
pub fn engine_shard_events(shard: usize) -> String {
    format!("engine.shard{shard}.events")
}

/// Event batches sent to one shard worker of the parallel engine.
pub fn engine_shard_batches(shard: usize) -> String {
    format!("engine.shard{shard}.batches")
}

/// High-water inbox depth (queued collector items) of one shard worker.
pub fn engine_shard_inbox_depth_max(shard: usize) -> String {
    format!("engine.shard{shard}.inbox_depth_max")
}

/// Shard-balance ratio in permille: `(max - min) * 1000 / max` over
/// per-shard routed event counts (0 = perfectly balanced).
pub const ENGINE_SHARD_IMBALANCE_PERMILLE: &str = "engine.shard_imbalance_permille";

/// Open sessions retained by the cross-shard unfixed merger.
pub const ENGINE_UNFIXED_PENDING_SESSIONS: &str = "engine.unfixed.pending_sessions";
/// User-defined window slices queued in the cross-shard unfixed merger.
pub const ENGINE_UNFIXED_QUEUED_UD_SLICES: &str = "engine.unfixed.queued_ud_slices";
/// Count-query predicate survivors buffered for sequenced replay.
pub const ENGINE_UNFIXED_COUNT_SURVIVORS: &str = "engine.unfixed.count_survivors";

// --- trace.* ----------------------------------------------------------

/// Trace events overwritten by ring-buffer drop-oldest.
pub const TRACE_DROPPED_EVENTS: &str = "trace.dropped_events";

/// Per-query per-stage latency histogram fed from stitched trace chains.
pub fn trace_stage_us(query: u64, stage: &str) -> String {
    format!("trace.q{query}.{stage}_us")
}

// --- prof.* (pipeline profiler) ---------------------------------------

/// Cumulative self-time of one profiler (lane, stage) cell, nanoseconds.
pub fn prof_stage_ns(lane: &str, stage: &str) -> String {
    format!("prof.{lane}.{stage}_ns")
}

/// Scopes entered on one profiler (lane, stage) cell.
pub fn prof_stage_calls(lane: &str, stage: &str) -> String {
    format!("prof.{lane}.{stage}_calls")
}

// --- cluster.* (whole-run aggregates) ---------------------------------

/// Result latency (generation to emission) histogram of a cluster run.
pub const CLUSTER_RESULT_LATENCY_US: &str = "cluster.result_latency_us";
/// Prefix under which summed local-engine counters are published.
pub const CLUSTER_LOCAL_ENGINE_PREFIX: &str = "cluster.local_engine";
/// Raw events that reached the root (centralized baseline traffic).
pub const NET_ROOT_RAW_EVENTS: &str = "net.root.raw_events";

/// Prefix under which one run's snapshot merges into the process-global
/// registry, keyed by the system label (`desis`, `disco`, ...).
pub fn cluster_system_prefix(system_label: &str) -> String {
    format!("cluster.{system_label}.")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose_dotted_paths() {
        assert_eq!(ingress_bytes("root"), "net.root.ingress_bytes");
        assert_eq!(ingress_msgs("root", TAG_SLICE), "net.root.msgs.slice");
        assert_eq!(egress_bytes(7), "net.node7.egress_bytes");
        assert_eq!(trace_stage_us(3, "merge"), "trace.q3.merge_us");
        assert_eq!(engine_result_latency_us(1), "engine.result_latency_us.q1");
        assert_eq!(engine_shard_events(2), "engine.shard2.events");
        assert_eq!(engine_shard_batches(0), "engine.shard0.batches");
        assert_eq!(
            engine_shard_inbox_depth_max(3),
            "engine.shard3.inbox_depth_max"
        );
        assert_eq!(queue_depth("root"), "net.root.queue_depth");
        assert_eq!(prof_stage_ns("shard0", "slicer"), "prof.shard0.slicer_ns");
        assert_eq!(
            prof_stage_calls("driver", "barrier"),
            "prof.driver.barrier_calls"
        );
        assert_eq!(cluster_system_prefix("desis"), "cluster.desis.");
    }

    #[test]
    fn tag_list_is_exhaustive_and_distinct() {
        let mut tags = MSG_TAGS.to_vec();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), MSG_TAGS.len());
        assert!(!MSG_TAGS.contains(&TAG_OTHER));
    }
}
