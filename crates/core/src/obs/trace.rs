//! Causal slice tracing: cross-node provenance spans.
//!
//! The metrics registry answers *how much* (bytes, messages, latency
//! distributions) but not *where one window result spent its time*. This
//! module mints a [`TraceId`] when a slice starts accumulating events at a
//! leaf and follows it — through sealing, wire encoding, link transfer,
//! intermediate merging, and root window assembly — to the emitted result.
//!
//! Recording is lock-cheap: each component holds a private
//! [`TraceRecorder`] whose ring buffer is written without any
//! synchronization (bounded, drop-oldest; drops are counted and exposed
//! as a registry counter). Buffers flow back to the shared
//! [`TraceCollector`] when a recorder is dropped (worker threads end) or
//! explicitly flushed. The collector stitches them into causally-ordered
//! per-trace chains ([`TraceTimeline`]), computes per-stage latency
//! breakdowns per query (feeding the existing
//! [`LogHistogram`](crate::obs::LogHistogram)s), and
//! exports Chrome trace-event JSON loadable in Perfetto or
//! `chrome://tracing`.
//!
//! Sampling is decided at mint time: `sample_every = N` traces every Nth
//! slice, so with tracing installed but no slice sampled the hot path
//! cost is a branch on a `None`.

use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::Mutex;

use super::{names, MetricsRegistry};

/// Registry counter name for ring-buffer overflow drops.
pub const DROPPED_EVENTS_COUNTER: &str = names::TRACE_DROPPED_EVENTS;

/// Default ring-buffer capacity per recorder (events).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Identity of one traced slice, minted at slice creation on a leaf and
/// carried unchanged through sealing, the wire codec, and every merge
/// level up to the root result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

impl TraceId {
    /// Rebuilds an id decoded from the wire.
    pub fn from_u64(v: u64) -> Self {
        TraceId(v)
    }

    /// Raw id for wire encoding.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Typed span event kinds, in causal stage order along a slice's journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A leaf slicer opened a new slice (first event accumulated).
    SliceCreated,
    /// The slice was sealed (boundary crossed / watermark).
    SliceSealed,
    /// The slice was encoded for the wire (`bytes` = frame size).
    SliceEncoded {
        /// Encoded frame size in bytes.
        bytes: u64,
    },
    /// The encoded frame entered the outgoing link.
    LinkSend,
    /// A parent decoded the slice off an incoming link.
    LinkRecv,
    /// A merger began folding this slice into a pending merge.
    MergeStart,
    /// The merged slice covering this trace was released downstream.
    MergeDone,
    /// The root assembled a window terminated by this slice.
    WindowAssembled,
    /// A result of `query` was emitted from a window this slice closed.
    ResultEmitted {
        /// The query whose result was emitted.
        query: u64,
    },
    /// A parent noticed `child` lagging its siblings' watermarks.
    ChildSuspect {
        /// The child node the parent is suspicious of.
        child: u32,
    },
    /// A parent detected a sequence gap from `child` and began NACKing.
    ChildRecovering {
        /// The child node being recovered.
        child: u32,
    },
    /// A previously suspect or recovering `child` returned to healthy.
    ChildRecovered {
        /// The child node that recovered.
        child: u32,
    },
    /// The parent gave up on `child` (retry budget exhausted, decode
    /// failure without backchannel, or disconnect) and flushed on its
    /// behalf.
    ChildLost {
        /// The child node declared lost.
        child: u32,
    },
}

impl SpanKind {
    /// Stable name used in trace exports.
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::SliceCreated => "SliceCreated",
            SpanKind::SliceSealed => "SliceSealed",
            SpanKind::SliceEncoded { .. } => "SliceEncoded",
            SpanKind::LinkSend => "LinkSend",
            SpanKind::LinkRecv => "LinkRecv",
            SpanKind::MergeStart => "MergeStart",
            SpanKind::MergeDone => "MergeDone",
            SpanKind::WindowAssembled => "WindowAssembled",
            SpanKind::ResultEmitted { .. } => "ResultEmitted",
            SpanKind::ChildSuspect { .. } => "ChildSuspect",
            SpanKind::ChildRecovering { .. } => "ChildRecovering",
            SpanKind::ChildRecovered { .. } => "ChildRecovered",
            SpanKind::ChildLost { .. } => "ChildLost",
        }
    }

    /// Position in the canonical leaf-to-root stage order. Multi-level
    /// topologies repeat encode/send/recv/merge stages, so this orders
    /// kinds within one hop, not globally.
    pub fn stage_index(&self) -> u8 {
        match self {
            SpanKind::SliceCreated => 0,
            SpanKind::SliceSealed => 1,
            SpanKind::SliceEncoded { .. } => 2,
            SpanKind::LinkSend => 3,
            SpanKind::LinkRecv => 4,
            SpanKind::MergeStart => 5,
            SpanKind::MergeDone => 6,
            SpanKind::WindowAssembled => 7,
            SpanKind::ResultEmitted { .. } => 8,
            SpanKind::ChildSuspect { .. } => 9,
            SpanKind::ChildRecovering { .. } => 10,
            SpanKind::ChildRecovered { .. } => 11,
            SpanKind::ChildLost { .. } => 12,
        }
    }
}

/// One recorded span event.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// The slice identity this event belongs to.
    pub trace: TraceId,
    /// What happened.
    pub kind: SpanKind,
    /// Node that recorded the event.
    pub node: u32,
    /// Monotonic instant of the event.
    pub at: Instant,
}

/// State shared between the collector and all its recorders.
#[derive(Debug)]
struct TraceShared {
    /// Next [`TraceId`] to mint (starts at 1).
    next_id: AtomicU64,
    /// Mint a trace for every Nth slice (1 = every slice).
    sample_every: u64,
    /// Slices seen so far across all recorders (sampling position).
    seq: AtomicU64,
    /// Ring-buffer capacity handed to each recorder.
    capacity: usize,
    /// Events overwritten by drop-oldest across all recorders.
    drops: AtomicU64,
    /// Finished ring buffers, flushed when recorders drop.
    sink: Mutex<Vec<Vec<TraceEvent>>>,
}

impl TraceShared {
    /// Samples one slice creation: every `sample_every`-th slice gets an
    /// id; the rest return `None` and stay untraced end to end.
    fn maybe_mint(&self) -> Option<TraceId> {
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        if !n.is_multiple_of(self.sample_every) {
            return None;
        }
        Some(TraceId(self.next_id.fetch_add(1, Ordering::Relaxed)))
    }
}

/// A bounded, drop-oldest ring buffer of [`TraceEvent`]s owned by one
/// component on one thread. Recording never takes a lock; the buffer is
/// handed to the collector when the recorder is dropped.
#[derive(Debug)]
pub struct TraceRecorder {
    shared: Arc<TraceShared>,
    node: u32,
    buf: Vec<TraceEvent>,
    /// Next overwrite position once the ring is full.
    head: usize,
    dropped: u64,
}

impl TraceRecorder {
    /// Samples one slice creation (see [`TraceCollector`] sampling).
    pub fn maybe_mint(&self) -> Option<TraceId> {
        self.shared.maybe_mint()
    }

    /// Records a span event now. O(1), no locks; overwrites the oldest
    /// event (counting a drop) when the ring is full.
    pub fn record(&mut self, trace: TraceId, kind: SpanKind) {
        let ev = TraceEvent {
            trace,
            kind,
            node: self.node,
            at: Instant::now(),
        };
        let cap = self.shared.capacity;
        if self.buf.len() < cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % cap;
            self.dropped += 1;
        }
    }

    /// Hands the buffered events to the collector, emptying this
    /// recorder. Called automatically on drop.
    pub fn flush(&mut self) {
        if self.dropped > 0 {
            self.shared.drops.fetch_add(self.dropped, Ordering::Relaxed);
            self.dropped = 0;
        }
        if self.buf.is_empty() {
            return;
        }
        // Un-rotate the ring so events leave in record order.
        let mut events = std::mem::take(&mut self.buf);
        events.rotate_left(self.head);
        self.head = 0;
        let mut sink = lock_sink(&self.shared.sink);
        sink.push(events);
    }
}

impl Clone for TraceRecorder {
    /// A clone is a fresh, empty recorder on the same collector (ring
    /// buffers are per-component and never shared).
    fn clone(&self) -> Self {
        TraceRecorder {
            shared: Arc::clone(&self.shared),
            node: self.node,
            buf: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }
}

impl Drop for TraceRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

fn lock_sink(m: &Mutex<Vec<Vec<TraceEvent>>>) -> crate::sync::MutexGuard<'_, Vec<Vec<TraceEvent>>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Mints sampled [`TraceId`]s, hands out per-component
/// [`TraceRecorder`]s, and stitches their buffers into a
/// [`TraceTimeline`].
#[derive(Debug, Clone)]
pub struct TraceCollector {
    shared: Arc<TraceShared>,
}

impl TraceCollector {
    /// Creates a collector tracing every `sample_every`-th slice
    /// (clamped to ≥ 1) with `capacity`-event ring buffers per recorder.
    pub fn new(sample_every: u64, capacity: usize) -> Self {
        TraceCollector {
            shared: Arc::new(TraceShared {
                next_id: AtomicU64::new(1),
                sample_every: sample_every.max(1),
                seq: AtomicU64::new(0),
                capacity: capacity.max(1),
                drops: AtomicU64::new(0),
                sink: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Installs a process-global collector (first call wins) for
    /// harnesses that cannot thread one through their plumbing. Returns
    /// the installed collector.
    pub fn install_global(sample_every: u64, capacity: usize) -> &'static TraceCollector {
        GLOBAL.get_or_init(|| TraceCollector::new(sample_every, capacity))
    }

    /// The process-global collector, if one was installed.
    pub fn global() -> Option<&'static TraceCollector> {
        GLOBAL.get()
    }

    /// Creates a recorder attributed to `node`.
    pub fn recorder(&self, node: u32) -> TraceRecorder {
        TraceRecorder {
            shared: Arc::clone(&self.shared),
            node,
            buf: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// Events overwritten by drop-oldest so far (flushed recorders only).
    pub fn dropped(&self) -> u64 {
        self.shared.drops.load(Ordering::Relaxed)
    }

    /// Takes every flushed buffer and stitches the events into
    /// causally-ordered per-trace chains. Live (unflushed) recorders are
    /// not included; drop or flush them first.
    pub fn drain_timeline(&self) -> TraceTimeline {
        let buffers = std::mem::take(&mut *lock_sink(&self.shared.sink));
        let mut events: Vec<TraceEvent> = buffers.into_iter().flatten().collect();
        // Stable sort by (trace, time, stage): stage breaks exact-instant
        // ties in causal order on coarse clocks.
        events.sort_by(|a, b| {
            (a.trace, a.at, a.kind.stage_index()).cmp(&(b.trace, b.at, b.kind.stage_index()))
        });
        let epoch = events.iter().map(|e| e.at).min();
        let mut chains: Vec<TraceChain> = Vec::new();
        for ev in events {
            match chains.last_mut() {
                Some(chain) if chain.trace == ev.trace => chain.events.push(ev),
                _ => chains.push(TraceChain {
                    trace: ev.trace,
                    events: vec![ev],
                }),
            }
        }
        TraceTimeline {
            chains,
            epoch,
            dropped: self.dropped(),
        }
    }
}

static GLOBAL: OnceLock<TraceCollector> = OnceLock::new();

/// All recorded events of one trace id, in causal (time) order.
#[derive(Debug, Clone)]
pub struct TraceChain {
    /// The slice identity.
    pub trace: TraceId,
    /// Events in ascending time order.
    pub events: Vec<TraceEvent>,
}

impl TraceChain {
    /// Whether the chain covers the full journey: starts at
    /// `SliceCreated`, was sealed, and ends in `ResultEmitted`.
    pub fn is_complete(&self) -> bool {
        matches!(
            self.events.first().map(|e| e.kind),
            Some(SpanKind::SliceCreated)
        ) && matches!(
            self.events.last().map(|e| e.kind),
            Some(SpanKind::ResultEmitted { .. })
        ) && self.events.iter().any(|e| e.kind == SpanKind::SliceSealed)
    }

    /// The query of the final `ResultEmitted`, if the chain has one.
    pub fn result_query(&self) -> Option<u64> {
        self.events.iter().rev().find_map(|e| match e.kind {
            SpanKind::ResultEmitted { query } => Some(query),
            _ => None,
        })
    }

    /// First event of `kind_name`, by stable span name.
    fn first(&self, name: &str) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.kind.name() == name)
    }

    /// Last event of `kind_name`, by stable span name.
    fn last(&self, name: &str) -> Option<&TraceEvent> {
        self.events.iter().rev().find(|e| e.kind.name() == name)
    }

    /// Per-stage latency breakdown in microseconds:
    /// `(stage name, duration_us)`. Stages with missing endpoints are
    /// omitted; multi-hop chains report first-to-last per stage.
    pub fn stage_breakdown_us(&self) -> Vec<(&'static str, u64)> {
        let mut out = Vec::new();
        let dur = |a: Option<&TraceEvent>, b: Option<&TraceEvent>| -> Option<u64> {
            let (a, b) = (a?, b?);
            Some(b.at.saturating_duration_since(a.at).as_micros() as u64)
        };
        if let Some(d) = dur(self.first("SliceCreated"), self.first("SliceSealed")) {
            out.push(("slice", d));
        }
        if let Some(d) = dur(self.first("SliceEncoded"), self.last("LinkRecv")) {
            out.push(("ship", d));
        }
        if let Some(d) = dur(self.first("MergeStart"), self.last("MergeDone")) {
            out.push(("merge", d));
        }
        let assembled = self.last("ResultEmitted");
        let merge_done = self.last("MergeDone").or_else(|| self.last("LinkRecv"));
        if let Some(d) = dur(merge_done, assembled) {
            out.push(("assemble", d));
        }
        if let Some(d) = dur(self.events.first(), self.events.last()) {
            out.push(("total", d));
        }
        out
    }
}

/// A causally-ordered view over every flushed recorder buffer.
#[derive(Debug, Clone)]
pub struct TraceTimeline {
    /// Per-trace chains, ordered by trace id.
    pub chains: Vec<TraceChain>,
    /// Earliest recorded instant (timestamp zero of the export).
    epoch: Option<Instant>,
    /// Ring-buffer drops at drain time.
    pub dropped: u64,
}

impl TraceTimeline {
    /// Number of chains covering the full leaf-to-result journey.
    pub fn complete_chains(&self) -> usize {
        self.chains.iter().filter(|c| c.is_complete()).count()
    }

    /// Publishes per-stage latency breakdowns per query into `registry`
    /// (`trace.q<id>.<stage>_us` histograms) and the ring-buffer drop
    /// count ([`DROPPED_EVENTS_COUNTER`]).
    pub fn publish(&self, registry: &MetricsRegistry) {
        registry
            .counter(DROPPED_EVENTS_COUNTER)
            .raise_to(self.dropped);
        for chain in &self.chains {
            let Some(query) = chain.result_query() else {
                continue;
            };
            for (stage, us) in chain.stage_breakdown_us() {
                registry
                    .histogram(&names::trace_stage_us(query, stage))
                    .record(us);
            }
        }
    }

    /// Serializes the timeline as Chrome trace-event JSON (the format
    /// Perfetto and `chrome://tracing` load): one instant event per span
    /// plus one duration (`"ph":"X"`) event per stage, with `pid` =
    /// recording node and `tid` = trace id.
    pub fn to_chrome_json(&self) -> String {
        self.to_chrome_json_with(&[])
    }

    /// Like [`TraceTimeline::to_chrome_json`], additionally appending
    /// one Perfetto counter track (`"ph":"C"`) per entry of `tracks`
    /// under a synthetic `pid` 999999 ("metrics"). Track samples are
    /// `(ts_us, value)` pairs — e.g. flight-recorder counter rates via
    /// [`crate::obs::prof::FlightRecorder::counter_tracks`] — on the
    /// profiler's own time base (its `begin`), which for a run traced
    /// end to end coincides with the span epoch to within startup
    /// latency.
    pub fn to_chrome_json_with(&self, tracks: &[(String, Vec<(u64, f64)>)]) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut push_event = |out: &mut String, json: String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&json);
        };
        const METRICS_PID: u32 = 999_999;
        for (track, samples) in tracks {
            let name = crate::obs::json_escape(track);
            for (ts, value) in samples {
                push_event(
                    &mut out,
                    format!(
                        "{{\"name\":\"{name}\",\"cat\":\"metric\",\"ph\":\"C\",\
                         \"ts\":{ts},\"pid\":{METRICS_PID},\
                         \"args\":{{\"value\":{value}}}}}"
                    ),
                );
            }
        }
        if !tracks.is_empty() {
            push_event(
                &mut out,
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{METRICS_PID},\
                     \"args\":{{\"name\":\"metrics\"}}}}"
                ),
            );
        }
        let Some(epoch) = self.epoch else {
            out.push_str("]}");
            return out;
        };
        let ts_us = |at: Instant| at.saturating_duration_since(epoch).as_micros() as u64;
        let mut nodes_seen = std::collections::BTreeSet::new();
        for chain in &self.chains {
            for ev in &chain.events {
                nodes_seen.insert(ev.node);
                let mut args = format!("\"trace\":{}", ev.trace);
                match ev.kind {
                    SpanKind::SliceEncoded { bytes } => {
                        let _ = write!(args, ",\"bytes\":{bytes}");
                    }
                    SpanKind::ResultEmitted { query } => {
                        let _ = write!(args, ",\"query\":{query}");
                    }
                    _ => {}
                }
                push_event(
                    &mut out,
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"i\",\"s\":\"t\",\
                         \"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{{}}}}}",
                        ev.kind.name(),
                        ts_us(ev.at),
                        ev.node,
                        chain.trace,
                        args,
                    ),
                );
            }
            // Stage duration events, anchored at the stage's start node.
            let start = match chain.events.first() {
                Some(e) => e,
                None => continue,
            };
            let mut cursor = ts_us(start.at);
            for (stage, us) in chain.stage_breakdown_us() {
                if stage == "total" {
                    continue;
                }
                push_event(
                    &mut out,
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"stage\",\"ph\":\"X\",\
                         \"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\
                         \"args\":{{\"trace\":{}}}}}",
                        stage, cursor, us, start.node, chain.trace, chain.trace,
                    ),
                );
                cursor += us;
            }
        }
        for node in nodes_seen {
            push_event(
                &mut out,
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{node},\
                     \"args\":{{\"name\":\"node {node}\"}}}}"
                ),
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_mints_every_nth_slice() {
        let tc = TraceCollector::new(3, 16);
        let rec = tc.recorder(0);
        let minted: Vec<bool> = (0..9).map(|_| rec.maybe_mint().is_some()).collect();
        assert_eq!(
            minted,
            vec![true, false, false, true, false, false, true, false, false]
        );
    }

    #[test]
    fn ring_buffer_drops_oldest_and_counts() {
        let tc = TraceCollector::new(1, 4);
        let mut rec = tc.recorder(7);
        for _ in 0..6 {
            let id = rec.maybe_mint().unwrap();
            rec.record(id, SpanKind::SliceCreated);
        }
        drop(rec);
        assert_eq!(tc.dropped(), 2);
        let tl = tc.drain_timeline();
        // Oldest two events (traces 1, 2) were overwritten.
        let ids: Vec<u64> = tl.chains.iter().map(|c| c.trace.as_u64()).collect();
        assert_eq!(ids, vec![3, 4, 5, 6]);
        assert_eq!(tl.dropped, 2);
    }

    #[test]
    fn timeline_stitches_chains_across_recorders() {
        let tc = TraceCollector::new(1, 64);
        let mut leaf = tc.recorder(1);
        let mut root = tc.recorder(0);
        let id = leaf.maybe_mint().unwrap();
        leaf.record(id, SpanKind::SliceCreated);
        leaf.record(id, SpanKind::SliceSealed);
        leaf.record(id, SpanKind::SliceEncoded { bytes: 99 });
        leaf.record(id, SpanKind::LinkSend);
        root.record(id, SpanKind::LinkRecv);
        root.record(id, SpanKind::MergeStart);
        root.record(id, SpanKind::MergeDone);
        root.record(id, SpanKind::WindowAssembled);
        root.record(id, SpanKind::ResultEmitted { query: 42 });
        drop(leaf);
        drop(root);
        let tl = tc.drain_timeline();
        assert_eq!(tl.chains.len(), 1);
        let chain = &tl.chains[0];
        assert!(chain.is_complete());
        assert_eq!(chain.result_query(), Some(42));
        assert_eq!(tl.complete_chains(), 1);
        // Timestamps are monotone along the chain.
        for pair in chain.events.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        let stages: Vec<&str> = chain.stage_breakdown_us().iter().map(|(s, _)| *s).collect();
        assert_eq!(stages, vec!["slice", "ship", "merge", "assemble", "total"]);
    }

    #[test]
    fn publish_feeds_stage_histograms_and_drop_counter() {
        let tc = TraceCollector::new(1, 64);
        let mut rec = tc.recorder(0);
        let id = rec.maybe_mint().unwrap();
        rec.record(id, SpanKind::SliceCreated);
        rec.record(id, SpanKind::SliceSealed);
        rec.record(id, SpanKind::ResultEmitted { query: 5 });
        drop(rec);
        let registry = MetricsRegistry::new();
        tc.drain_timeline().publish(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counters[DROPPED_EVENTS_COUNTER], 0);
        assert_eq!(snap.histograms["trace.q5.slice_us"].count, 1);
        assert_eq!(snap.histograms["trace.q5.total_us"].count, 1);
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let tc = TraceCollector::new(1, 64);
        let mut rec = tc.recorder(3);
        let id = rec.maybe_mint().unwrap();
        rec.record(id, SpanKind::SliceCreated);
        rec.record(id, SpanKind::SliceEncoded { bytes: 17 });
        rec.record(id, SpanKind::ResultEmitted { query: 1 });
        drop(rec);
        let json = tc.drain_timeline().to_chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"traceEvents\":["), "{json}");
        assert!(json.contains("\"SliceCreated\""), "{json}");
        assert!(json.contains("\"bytes\":17"), "{json}");
        assert!(json.contains("\"process_name\""), "{json}");
        // Balanced braces/brackets — cheap well-formedness check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn chrome_json_appends_counter_tracks() {
        let tc = TraceCollector::new(1, 64);
        let mut rec = tc.recorder(0);
        let id = rec.maybe_mint().unwrap();
        rec.record(id, SpanKind::SliceCreated);
        drop(rec);
        let tracks = vec![
            (
                "engine.shard0.events".to_string(),
                vec![(5u64, 10.0), (15, 25.0)],
            ),
            ("prof.driver.barrier_ns".to_string(), vec![(5, 1_000.0)]),
        ];
        let json = tc.drain_timeline().to_chrome_json_with(&tracks);
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        assert!(json.contains("\"engine.shard0.events\""), "{json}");
        assert!(json.contains("\"value\":25"), "{json}");
        assert!(json.contains("\"name\":\"metrics\""), "{json}");
        // Span events still present alongside the tracks.
        assert!(json.contains("\"SliceCreated\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());

        // Tracks alone (no chains) still export well-formed JSON.
        let empty = TraceCollector::new(1, 8).drain_timeline();
        let json = empty.to_chrome_json_with(&tracks);
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn empty_timeline_exports_empty_event_list() {
        let tc = TraceCollector::new(1, 8);
        let tl = tc.drain_timeline();
        assert_eq!(tl.chains.len(), 0);
        assert_eq!(
            tl.to_chrome_json(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }

    #[test]
    fn clone_gives_fresh_buffer_on_same_collector() {
        let tc = TraceCollector::new(1, 8);
        let mut a = tc.recorder(1);
        let id = a.maybe_mint().unwrap();
        a.record(id, SpanKind::SliceCreated);
        let mut b = a.clone();
        let id2 = b.maybe_mint().unwrap();
        assert_ne!(id, id2, "clone shares the mint sequence");
        b.record(id2, SpanKind::SliceCreated);
        drop(a);
        drop(b);
        assert_eq!(tc.drain_timeline().chains.len(), 2);
    }
}
