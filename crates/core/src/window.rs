//! Window types and measures (paper Section 2.1).
//!
//! Desis supports the three Dataflow-model window types — tumbling, sliding
//! and session — plus *user-defined* windows delimited by marker events, in
//! both *time* and *count* measures.
//!
//! A window is delimited by two *punctuations*: a start punctuation (`sp`)
//! and an end punctuation (`ep`) (Section 4.1). For fixed-size time windows
//! the punctuation times are computable in advance; for sessions and
//! user-defined windows they depend on the data.

use crate::error::DesisError;
use crate::event::MarkerChannel;
use crate::time::{next_multiple_after, next_progression_after, DurationMs, EventCount, Timestamp};

/// How the extent of a window is measured (Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Measure {
    /// Window length is a span of event time (milliseconds).
    Time,
    /// Window length is a number of events.
    Count,
}

/// The shape of a window (Section 2.1).
///
/// Lengths/steps are interpreted according to the [`Measure`] of the
/// enclosing [`WindowSpec`]: milliseconds for [`Measure::Time`], events for
/// [`Measure::Count`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowKind {
    /// Gap-free, non-overlapping windows of fixed length.
    Tumbling {
        /// Window length.
        length: u64,
    },
    /// Fixed-length windows starting every `step` units; overlap when
    /// `step < length`.
    Sliding {
        /// Window length.
        length: u64,
        /// Distance between consecutive window starts.
        step: u64,
    },
    /// Data-driven windows that close after `gap` of event-time inactivity.
    /// Always time-measured.
    Session {
        /// Inactivity gap that terminates the session.
        gap: DurationMs,
    },
    /// Windows delimited by user-defined start/end marker events on a
    /// channel (e.g. per-trip windows). Always data-driven.
    UserDefined {
        /// Marker channel that delimits these windows.
        channel: MarkerChannel,
    },
}

/// A complete window definition: kind + measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowSpec {
    /// Shape of the window.
    pub kind: WindowKind,
    /// Unit in which window extents are measured.
    pub measure: Measure,
}

impl WindowSpec {
    /// A time-measured tumbling window of `length` milliseconds.
    pub fn tumbling_time(length: DurationMs) -> Result<Self, DesisError> {
        if length == 0 {
            return Err(DesisError::InvalidWindow("tumbling length must be > 0"));
        }
        Ok(Self {
            kind: WindowKind::Tumbling { length },
            measure: Measure::Time,
        })
    }

    /// A time-measured sliding window (`length` ms, advancing every `step` ms).
    pub fn sliding_time(length: DurationMs, step: DurationMs) -> Result<Self, DesisError> {
        if length == 0 || step == 0 {
            return Err(DesisError::InvalidWindow(
                "sliding length and step must be > 0",
            ));
        }
        if step > length {
            return Err(DesisError::InvalidWindow(
                "sliding step must not exceed length (would drop events)",
            ));
        }
        Ok(Self {
            kind: WindowKind::Sliding { length, step },
            measure: Measure::Time,
        })
    }

    /// A session window closing after `gap` milliseconds of inactivity.
    pub fn session(gap: DurationMs) -> Result<Self, DesisError> {
        if gap == 0 {
            return Err(DesisError::InvalidWindow("session gap must be > 0"));
        }
        Ok(Self {
            kind: WindowKind::Session { gap },
            measure: Measure::Time,
        })
    }

    /// A user-defined window delimited by markers on `channel`.
    pub fn user_defined(channel: MarkerChannel) -> Self {
        Self {
            kind: WindowKind::UserDefined { channel },
            measure: Measure::Time,
        }
    }

    /// A count-measured tumbling window of `length` events.
    pub fn tumbling_count(length: EventCount) -> Result<Self, DesisError> {
        if length == 0 {
            return Err(DesisError::InvalidWindow("tumbling length must be > 0"));
        }
        Ok(Self {
            kind: WindowKind::Tumbling { length },
            measure: Measure::Count,
        })
    }

    /// A count-measured sliding window.
    pub fn sliding_count(length: EventCount, step: EventCount) -> Result<Self, DesisError> {
        if length == 0 || step == 0 {
            return Err(DesisError::InvalidWindow(
                "sliding length and step must be > 0",
            ));
        }
        if step > length {
            return Err(DesisError::InvalidWindow(
                "sliding step must not exceed length (would drop events)",
            ));
        }
        Ok(Self {
            kind: WindowKind::Sliding { length, step },
            measure: Measure::Count,
        })
    }

    /// Whether window boundaries are fully determined by the spec
    /// (tumbling/sliding), as opposed to depending on the data
    /// (session/user-defined). Paper Section 5.1.1 vs 5.1.2.
    #[inline]
    pub fn is_fixed_size(&self) -> bool {
        matches!(
            self.kind,
            WindowKind::Tumbling { .. } | WindowKind::Sliding { .. }
        )
    }

    /// Whether this is a time-measured fixed-size window, i.e. all its
    /// punctuation times are computable in advance.
    #[inline]
    pub fn has_precomputable_puncts(&self) -> bool {
        self.measure == Measure::Time && self.is_fixed_size()
    }

    /// For time-measured fixed windows: the earliest punctuation (start *or*
    /// end of any window instance) strictly after `ts`.
    ///
    /// Returns `None` for data-driven or count-measured windows, whose
    /// punctuations are not time-computable.
    pub fn next_time_punct_after(&self, ts: Timestamp) -> Option<Timestamp> {
        if !self.has_precomputable_puncts() {
            return None;
        }
        match self.kind {
            WindowKind::Tumbling { length } => {
                // Starts and ends coincide at multiples of `length`.
                Some(next_multiple_after(ts, length))
            }
            WindowKind::Sliding { length, step } => {
                // Starts at k*step; ends at k*step + length.
                let next_start = next_multiple_after(ts, step);
                let next_end = next_progression_after(ts, step, length);
                Some(next_start.min(next_end))
            }
            _ => unreachable!("guarded by has_precomputable_puncts"),
        }
    }

    /// For count-measured fixed windows: the earliest punctuation (in event
    /// counts) strictly after `count` events have been ingested.
    pub fn next_count_punct_after(&self, count: EventCount) -> Option<EventCount> {
        if self.measure != Measure::Count {
            return None;
        }
        match self.kind {
            WindowKind::Tumbling { length } => Some(next_multiple_after(count, length)),
            WindowKind::Sliding { length, step } => {
                let next_start = next_multiple_after(count, step);
                let next_end = next_progression_after(count, step, length);
                Some(next_start.min(next_end))
            }
            _ => None,
        }
    }

    /// For fixed windows: does a window instance *end* exactly at
    /// punctuation `p` (a time for time-measure, a count for count-measure)?
    /// If so, returns the start of that instance.
    pub fn fixed_window_ending_at(&self, p: u64) -> Option<u64> {
        if !self.is_fixed_size() {
            return None;
        }
        match self.kind {
            WindowKind::Tumbling { length } => {
                (p > 0 && p.is_multiple_of(length)).then(|| p - length)
            }
            WindowKind::Sliding { length, step } => {
                // A window [k*step, k*step + length) ends at p iff
                // p >= length and (p - length) is a multiple of step.
                (p >= length && (p - length).is_multiple_of(step)).then(|| p - length)
            }
            _ => None,
        }
    }

    /// For fixed windows: does a window instance *start* exactly at
    /// punctuation `p`?
    pub fn fixed_window_starting_at(&self, p: u64) -> bool {
        match self.kind {
            WindowKind::Tumbling { length } => p.is_multiple_of(length),
            WindowKind::Sliding { step, .. } => p.is_multiple_of(step),
            _ => false,
        }
    }

    /// The session gap, if this is a session window.
    #[inline]
    pub fn session_gap(&self) -> Option<DurationMs> {
        match self.kind {
            WindowKind::Session { gap } => Some(gap),
            _ => None,
        }
    }

    /// The marker channel, if this is a user-defined window.
    #[inline]
    pub fn marker_channel(&self) -> Option<MarkerChannel> {
        match self.kind {
            WindowKind::UserDefined { channel } => Some(channel),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate() {
        assert!(WindowSpec::tumbling_time(0).is_err());
        assert!(WindowSpec::sliding_time(10, 0).is_err());
        assert!(WindowSpec::sliding_time(10, 20).is_err());
        assert!(WindowSpec::session(0).is_err());
        assert!(WindowSpec::tumbling_count(0).is_err());
        assert!(WindowSpec::tumbling_time(1000).is_ok());
        assert!(WindowSpec::sliding_time(1000, 500).is_ok());
    }

    #[test]
    fn tumbling_puncts() {
        let w = WindowSpec::tumbling_time(1000).unwrap();
        assert_eq!(w.next_time_punct_after(0), Some(1000));
        assert_eq!(w.next_time_punct_after(999), Some(1000));
        assert_eq!(w.next_time_punct_after(1000), Some(2000));
    }

    #[test]
    fn sliding_puncts_interleave_starts_and_ends() {
        // length 25, step 10: starts 0,10,20,...; ends 25,35,45,...
        let w = WindowSpec::sliding_time(25, 10).unwrap();
        let mut puncts = Vec::new();
        let mut t = 0;
        for _ in 0..8 {
            t = w.next_time_punct_after(t).unwrap();
            puncts.push(t);
        }
        assert_eq!(puncts, vec![10, 20, 25, 30, 35, 40, 45, 50]);
    }

    #[test]
    fn sliding_window_end_detection() {
        let w = WindowSpec::sliding_time(25, 10).unwrap();
        assert_eq!(w.fixed_window_ending_at(25), Some(0));
        assert_eq!(w.fixed_window_ending_at(35), Some(10));
        assert_eq!(w.fixed_window_ending_at(30), None);
        assert_eq!(w.fixed_window_ending_at(10), None);
    }

    #[test]
    fn tumbling_window_end_detection() {
        let w = WindowSpec::tumbling_time(1000).unwrap();
        assert_eq!(w.fixed_window_ending_at(1000), Some(0));
        assert_eq!(w.fixed_window_ending_at(3000), Some(2000));
        assert_eq!(w.fixed_window_ending_at(1500), None);
        assert_eq!(w.fixed_window_ending_at(0), None);
    }

    #[test]
    fn window_start_detection() {
        let t = WindowSpec::tumbling_time(1000).unwrap();
        assert!(t.fixed_window_starting_at(0));
        assert!(t.fixed_window_starting_at(2000));
        assert!(!t.fixed_window_starting_at(2500));

        let s = WindowSpec::sliding_time(25, 10).unwrap();
        assert!(s.fixed_window_starting_at(40));
        assert!(!s.fixed_window_starting_at(45));
    }

    #[test]
    fn session_and_user_defined_have_no_time_puncts() {
        assert_eq!(
            WindowSpec::session(500).unwrap().next_time_punct_after(0),
            None
        );
        assert_eq!(WindowSpec::user_defined(1).next_time_punct_after(0), None);
    }

    #[test]
    fn count_puncts() {
        let w = WindowSpec::tumbling_count(100).unwrap();
        assert_eq!(w.next_count_punct_after(0), Some(100));
        assert_eq!(w.next_count_punct_after(100), Some(200));
        assert_eq!(w.next_time_punct_after(0), None);

        let s = WindowSpec::sliding_count(100, 40).unwrap();
        // starts: 40, 80, 120...; ends: 100, 140, ...
        assert_eq!(s.next_count_punct_after(0), Some(40));
        assert_eq!(s.next_count_punct_after(80), Some(100));
        assert_eq!(s.next_count_punct_after(100), Some(120));
    }

    #[test]
    fn fixedness_classification() {
        assert!(WindowSpec::tumbling_time(10).unwrap().is_fixed_size());
        assert!(WindowSpec::sliding_time(10, 5).unwrap().is_fixed_size());
        assert!(!WindowSpec::session(10).unwrap().is_fixed_size());
        assert!(!WindowSpec::user_defined(0).is_fixed_size());
        assert!(WindowSpec::tumbling_time(10)
            .unwrap()
            .has_precomputable_puncts());
        assert!(!WindowSpec::tumbling_count(10)
            .unwrap()
            .has_precomputable_puncts());
    }

    #[test]
    fn accessors() {
        assert_eq!(WindowSpec::session(7).unwrap().session_gap(), Some(7));
        assert_eq!(WindowSpec::tumbling_time(7).unwrap().session_gap(), None);
        assert_eq!(WindowSpec::user_defined(3).marker_channel(), Some(3));
        assert_eq!(WindowSpec::session(7).unwrap().marker_channel(), None);
    }
}
