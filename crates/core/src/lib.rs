//! # desis-core
//!
//! From-scratch Rust implementation of the **Desis** aggregation engine
//! ("Desis: Efficient Window Aggregation in Decentralized Networks",
//! EDBT 2023).
//!
//! Desis processes many concurrent windowed aggregation queries over one
//! event stream while sharing partial results between windows that differ
//! in **window type** (tumbling / sliding / session / user-defined),
//! **window measure** (time / count), and — unlike slicing systems such as
//! Scotty — **aggregation function**:
//!
//! 1. The [query analyzer](engine::QueryAnalyzer) puts queries whose
//!    selection predicates are identical or disjoint into *query-groups*
//!    (Section 4.2.3).
//! 2. Aggregation functions are lowered to shareable
//!    [*operators*](aggregate::OperatorKind) (Table 1): `average` becomes
//!    `sum`+`count`, `max`/`min` become a decomposable sort,
//!    `median`/`quantile` a non-decomposable sort, and so on.
//! 3. The [stream slicer](engine::GroupSlicer) cuts the stream at every
//!    window punctuation and folds each event *once* into the union of
//!    operators of its query-group (Section 4.1).
//! 4. The [assembler](engine::Assembler) merges slice partials into final
//!    per-window, per-key results when end punctuations fire (Section 4.3).
//!
//! Slices carry auto-incrementing ids, end-punctuation marks, and session
//! gaps, which is exactly the interface the decentralized substrate
//! (`desis-net`) uses to aggregate across local → intermediate → root
//! nodes (Section 5).
//!
//! ## Quickstart
//!
//! ```
//! use desis_core::prelude::*;
//!
//! // Three queries with different window types and functions — one
//! // query-group, every event processed once.
//! let queries = vec![
//!     Query::new(1, WindowSpec::tumbling_time(1_000)?, AggFunction::Max),
//!     Query::new(2, WindowSpec::sliding_time(2_000, 500)?, AggFunction::Quantile(0.9)),
//!     Query::new(3, WindowSpec::session(400)?, AggFunction::Median),
//! ];
//! let mut engine = AggregationEngine::new(queries)?;
//! assert_eq!(engine.group_count(), 1);
//!
//! for ts in 0..5_000u64 {
//!     engine.on_event(&Event::new(ts, (ts % 10) as u32, (ts % 97) as f64));
//! }
//! engine.on_watermark(10_000);
//! for result in engine.drain_results() {
//!     println!("query {} key {} [{}, {}) -> {:?}",
//!         result.query, result.key, result.window_start,
//!         result.window_end, result.values);
//! }
//! # Ok::<(), desis_core::DesisError>(())
//! ```

pub mod aggregate;
pub mod dsl;
pub mod engine;
pub mod error;
pub mod event;
pub mod metrics;
pub mod obs;
pub mod predicate;
pub mod query;
pub mod sync;
pub mod time;
pub mod window;

pub use error::DesisError;

/// Convenience re-exports of the most common types.
pub mod prelude {
    pub use crate::aggregate::{AggFunction, OperatorBundle, OperatorKind, OperatorSet};
    pub use crate::dsl::{parse_queries, parse_query, to_dsl};
    pub use crate::engine::{
        AggregationEngine, Assembler, Deployment, GroupExecution, GroupSlicer, ParallelConfig,
        ParallelEngine, QueryAnalyzer, QueryGroup, ReorderBuffer, SealedSlice, ShardedSlicer,
        SharingPolicy, SliceId, WindowEnd,
    };
    pub use crate::error::DesisError;
    pub use crate::event::{Event, EventBatch, Key, Marker, MarkerKind, Watermark};
    pub use crate::metrics::EngineMetrics;
    pub use crate::obs::trace::{
        SpanKind, TraceChain, TraceCollector, TraceId, TraceRecorder, TraceTimeline,
    };
    pub use crate::obs::{
        Counter, Gauge, HistogramSnapshot, LogHistogram, MetricsDiff, MetricsRegistry,
        MetricsSnapshot,
    };
    pub use crate::predicate::Predicate;
    pub use crate::query::{sort_results, Query, QueryId, QueryResult};
    pub use crate::time::{DurationMs, Timestamp, MINUTE, SECOND};
    pub use crate::window::{Measure, WindowKind, WindowSpec};
}
