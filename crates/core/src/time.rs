//! Logical time for the Desis engine.
//!
//! All windowing in Desis is *event-time* driven: windows open and close
//! based on the timestamps carried by events, never on the wall clock. This
//! makes every component deterministic and testable while matching the
//! semantics of the paper's generators, which stamp each event at creation.
//!
//! Timestamps are milliseconds since an arbitrary per-stream epoch. `u64`
//! milliseconds cover ~584 million years, which is enough for any stream.

/// Event-time instant in milliseconds since the stream epoch.
pub type Timestamp = u64;

/// Event-time duration in milliseconds.
pub type DurationMs = u64;

/// Number of events, for count-measured windows.
pub type EventCount = u64;

/// Milliseconds in one second, for readable window specs.
pub const SECOND: DurationMs = 1_000;

/// Milliseconds in one minute.
pub const MINUTE: DurationMs = 60 * SECOND;

/// Returns the smallest multiple of `step` that is strictly greater than
/// `ts`. This is how fixed-size time windows compute their next punctuation
/// *in advance*: the engine caches the result and compares each incoming
/// event against it with a single branch instead of re-deriving window
/// boundaries per event (Section 6.2.1 of the paper).
#[inline]
pub fn next_multiple_after(ts: Timestamp, step: DurationMs) -> Timestamp {
    debug_assert!(step > 0, "window step must be positive");
    (ts / step + 1) * step
}

/// Returns the smallest value of the form `k * step + offset` (k >= 0) that
/// is strictly greater than `ts`, or `offset` itself if `ts < offset`.
///
/// Sliding windows of length `l` and step `s` end at times `k * s + l`;
/// those end punctuations form an arithmetic progression with offset
/// `l % s` once the stream has warmed up, but the very first windows end
/// earlier, so we compute the progression exactly.
#[inline]
pub fn next_progression_after(ts: Timestamp, step: DurationMs, offset: DurationMs) -> Timestamp {
    debug_assert!(step > 0, "window step must be positive");
    if ts < offset {
        return offset;
    }
    let base = ts - offset;
    (base / step + 1) * step + offset
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_multiple_is_strictly_after() {
        assert_eq!(next_multiple_after(0, 10), 10);
        assert_eq!(next_multiple_after(9, 10), 10);
        assert_eq!(next_multiple_after(10, 10), 20);
        assert_eq!(next_multiple_after(11, 10), 20);
    }

    #[test]
    fn next_multiple_step_one() {
        assert_eq!(next_multiple_after(41, 1), 42);
    }

    #[test]
    fn progression_before_offset_returns_offset() {
        // Sliding length 25, step 10: ends at 25, 35, 45, ...
        assert_eq!(next_progression_after(0, 10, 25), 25);
        assert_eq!(next_progression_after(24, 10, 25), 25);
    }

    #[test]
    fn progression_after_offset() {
        assert_eq!(next_progression_after(25, 10, 25), 35);
        assert_eq!(next_progression_after(26, 10, 25), 35);
        assert_eq!(next_progression_after(44, 10, 25), 45);
        assert_eq!(next_progression_after(45, 10, 25), 55);
    }

    #[test]
    fn progression_zero_offset_matches_multiple() {
        for ts in [0u64, 1, 9, 10, 99, 100, 101] {
            assert_eq!(
                next_progression_after(ts, 10, 0),
                next_multiple_after(ts, 10)
            );
        }
    }
}
