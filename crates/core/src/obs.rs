//! Unified observability: a lock-cheap metrics registry shared by the
//! single-node engine, the decentralized substrate, and the benchmark
//! harness.
//!
//! Three instrument kinds cover everything the paper's evaluation
//! measures:
//!
//! * [`Counter`] — monotonically increasing `u64` (events, bytes,
//!   messages, calculations).
//! * [`Gauge`] — a signed level that can move both ways (queue depths,
//!   pending merge buffers).
//! * [`LogHistogram`] — a fixed-bucket base-2 log-scale histogram for
//!   latency-like values, reporting count/sum/max and estimated
//!   p50/p95/p99 without unbounded sample storage.
//!
//! Handles are `Arc`s over atomics: after registration (the only place a
//! lock is taken) updates are single relaxed atomic operations, so
//! instruments are safe to hit from the hot path and from many threads.
//! [`MetricsRegistry::snapshot`] freezes everything into a plain
//! [`MetricsSnapshot`] that serializes to JSON with no external
//! dependencies.

pub mod names;
pub mod prof;
pub mod trace;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};

use crate::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use crate::sync::Mutex;

/// Number of histogram buckets: one per power of two of `u64`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the counter to at least `v` (for republishing cumulative
    /// totals: calling twice with the same total is idempotent).
    pub fn raise_to(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed level (queue depth, buffered element count).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the level to at least `v` (high-water marks).
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket base-2 log-scale histogram over `u64` values
/// (typically microseconds).
///
/// Bucket `i` counts values `v` with `bucket_index(v) == i`, where bucket
/// 0 holds `{0, 1}` and bucket `i` holds `[2^i, 2^(i+1))`. Quantiles are
/// estimated as the upper edge of the bucket containing the rank, clamped
/// to the observed maximum — a one-sided error of at most 2x, which is
/// plenty for latency reporting across the orders of magnitude the paper
/// spans.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self {
            buckets: [(); HISTOGRAM_BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl LogHistogram {
    fn bucket_index(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            (u64::BITS - 1 - v.leading_zeros()) as usize
        }
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration given in seconds, as integer microseconds.
    pub fn record_secs(&self, secs: f64) {
        self.record((secs * 1e6).max(0.0) as u64);
    }

    /// Merges a snapshot (e.g. from another registry) into this
    /// histogram.
    pub fn merge(&self, snap: &HistogramSnapshot) {
        for (i, c) in snap.buckets.iter().enumerate().take(HISTOGRAM_BUCKETS) {
            if *c > 0 {
                self.buckets[i].fetch_add(*c, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    /// Freezes the histogram into plain data.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Frozen histogram data with quantile estimation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bucket counts ([`HISTOGRAM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated quantile (`q` in `0..=1`): the upper edge of the bucket
    /// holding the rank, clamped to the observed maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let upper = if i + 1 >= 64 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Estimated median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Estimated 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.3},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":{{",
            self.count,
            self.sum,
            self.max,
            self.mean(),
            self.p50(),
            self.p95(),
            self.p99(),
        );
        let mut first = true;
        for (i, c) in self.buckets.iter().enumerate() {
            if *c > 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\"{i}\":{c}");
            }
        }
        out.push_str("}}");
    }
}

/// A frozen view of a whole registry, serializable to JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Whether the snapshot holds no instruments at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Difference against an `earlier` snapshot of the same registry:
    /// counters and histogram counts/sums become deltas (saturating, so
    /// instruments that only exist in `self` diff against zero), gauges
    /// keep their later level. Drives per-figure (rather than
    /// process-lifetime) reporting in the experiments harness.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsDiff {
        let counters = self
            .counters
            .iter()
            .map(|(name, v)| {
                let before = earlier.counters.get(name).copied().unwrap_or(0);
                (name.clone(), v.saturating_sub(before))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| {
                let mut d = h.clone();
                if let Some(before) = earlier.histograms.get(name) {
                    d.count = d.count.saturating_sub(before.count);
                    d.sum = d.sum.saturating_sub(before.sum);
                    for (i, c) in before.buckets.iter().enumerate() {
                        if let Some(b) = d.buckets.get_mut(i) {
                            *b = b.saturating_sub(*c);
                        }
                    }
                }
                (name.clone(), d)
            })
            .collect();
        MetricsDiff {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Serializes the snapshot as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name:
    /// {count, sum, max, mean, p50, p95, p99, buckets}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", json_escape(name));
            h.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

/// The change between two [`MetricsSnapshot`]s of the same registry:
/// counter deltas (plus derived rates), latest gauge levels, and
/// histogram deltas.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsDiff {
    /// Per-counter increase since the earlier snapshot.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels at the later snapshot.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram activity since the earlier snapshot (count/sum/bucket
    /// deltas; `max` stays the later lifetime maximum).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsDiff {
    /// The delta of one counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A counter's rate in events per second over `elapsed_secs`.
    pub fn rate(&self, name: &str, elapsed_secs: f64) -> f64 {
        if elapsed_secs <= 0.0 {
            return 0.0;
        }
        self.counter(name) as f64 / elapsed_secs
    }

    /// Serializes as JSON. Each counter reports both its delta and its
    /// rate over `elapsed_secs`:
    /// `{"elapsed_secs":s,"counters":{name:{"delta":n,"per_sec":r}},
    /// "gauges":{...},"histograms":{...}}`.
    pub fn to_json(&self, elapsed_secs: f64) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(out, "{{\"elapsed_secs\":{elapsed_secs:.3},\"counters\":{{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"delta\":{v},\"per_sec\":{:.3}}}",
                json_escape(name),
                self.rate(name, elapsed_secs),
            );
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", json_escape(name));
            h.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

/// Escapes a string for use inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A named collection of instruments.
///
/// `counter`/`gauge`/`histogram` get-or-create by name under a short
/// lock; the returned `Arc` handles are lock-free to update. Names use
/// dotted paths, e.g. `net.node3.egress_bytes`.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<LogHistogram>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry. Long-running harnesses (the
    /// `experiments` binary) publish per-run snapshots here so one final
    /// dump covers everything that ran in the process.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    fn lock<T>(m: &Mutex<T>) -> crate::sync::MutexGuard<'_, T> {
        // A panic while holding the registration lock cannot corrupt a
        // BTreeMap of Arcs; keep serving metrics rather than poisoning.
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns the counter with `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = Self::lock(&self.counters);
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// Returns the gauge with `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = Self::lock(&self.gauges);
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::default());
        map.insert(name.to_string(), Arc::clone(&g));
        g
    }

    /// Returns the histogram with `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<LogHistogram> {
        let mut map = Self::lock(&self.histograms);
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(LogHistogram::default());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// Freezes every instrument into a [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: Self::lock(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: Self::lock(&self.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: Self::lock(&self.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Merges a snapshot into this registry under a name prefix:
    /// counters add, gauges keep their maximum, histograms merge
    /// bucket-wise. Used to publish per-run registries into
    /// [`MetricsRegistry::global`].
    pub fn merge_snapshot(&self, prefix: &str, snap: &MetricsSnapshot) {
        for (name, v) in &snap.counters {
            self.counter(&format!("{prefix}{name}")).add(*v);
        }
        for (name, v) in &snap.gauges {
            self.gauge(&format!("{prefix}{name}")).set_max(*v);
        }
        for (name, h) in &snap.histograms {
            self.histogram(&format!("{prefix}{name}")).merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.b");
        c.inc();
        c.add(4);
        c.raise_to(3); // below current: no-op
        assert_eq!(c.get(), 5);
        c.raise_to(10);
        assert_eq!(c.get(), 10);
        // Same name returns the same instrument.
        assert_eq!(reg.counter("a.b").get(), 10);

        let g = reg.gauge("depth");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LogHistogram::default();
        assert_eq!(h.snapshot().quantile(0.5), 0, "empty histogram");
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5_050);
        assert_eq!(s.max, 100);
        assert_eq!(s.mean(), 50.5);
        // p50 of 1..=100 is in bucket [32,64): estimate = 63.
        assert!(s.p50() >= 50 && s.p50() <= 64, "p50 = {}", s.p50());
        // p99 and p100 clamp to the observed max.
        assert!(s.p99() >= 99 && s.p99() <= 100, "p99 = {}", s.p99());
        assert_eq!(s.quantile(1.0), 100);
        // Quantiles are monotone in q.
        assert!(s.p50() <= s.p95() && s.p95() <= s.p99());
    }

    #[test]
    fn histogram_bucket_index_edges() {
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 0);
        assert_eq!(LogHistogram::bucket_index(2), 1);
        assert_eq!(LogHistogram::bucket_index(3), 1);
        assert_eq!(LogHistogram::bucket_index(4), 2);
        assert_eq!(LogHistogram::bucket_index(u64::MAX), 63);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let reg = MetricsRegistry::new();
        reg.counter("events").add(42);
        reg.gauge("queue").set(-3);
        reg.histogram("lat_us").record(1_000);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"events\":42"), "{json}");
        assert!(json.contains("\"queue\":-3"), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
        assert!(json.contains("\"p99\":"), "{json}");
    }

    #[test]
    fn merge_snapshot_prefixes_and_accumulates() {
        let run = MetricsRegistry::new();
        run.counter("bytes").add(10);
        run.histogram("lat").record(8);
        let global = MetricsRegistry::new();
        global.merge_snapshot("run1.", &run.snapshot());
        global.merge_snapshot("run1.", &run.snapshot());
        let snap = global.snapshot();
        assert_eq!(snap.counters["run1.bytes"], 20);
        assert_eq!(snap.histograms["run1.lat"].count, 2);
        assert_eq!(snap.histograms["run1.lat"].max, 8);
    }

    #[test]
    fn snapshot_diff_reports_deltas_and_rates() {
        let reg = MetricsRegistry::new();
        reg.counter("events").add(100);
        reg.gauge("depth").set(4);
        reg.histogram("lat").record(10);
        let earlier = reg.snapshot();
        reg.counter("events").add(50);
        reg.counter("fresh").add(7);
        reg.gauge("depth").set(9);
        reg.histogram("lat").record(20);
        reg.histogram("lat").record(30);
        let diff = reg.snapshot().diff(&earlier);
        assert_eq!(diff.counter("events"), 50);
        assert_eq!(diff.counter("fresh"), 7, "new counters diff against 0");
        assert_eq!(diff.counter("missing"), 0);
        assert_eq!(diff.gauges["depth"], 9, "gauges keep the later level");
        assert_eq!(diff.histograms["lat"].count, 2);
        assert_eq!(diff.histograms["lat"].sum, 50);
        assert!((diff.rate("events", 2.0) - 25.0).abs() < 1e-9);
        assert_eq!(diff.rate("events", 0.0), 0.0);
        let json = diff.to_json(2.0);
        assert!(
            json.contains("\"events\":{\"delta\":50,\"per_sec\":25.000"),
            "{json}"
        );
        assert!(json.contains("\"elapsed_secs\":2.000"), "{json}");
    }

    /// Exact quantile of a sorted sample at the same rank the histogram
    /// estimator targets (ceil(q*n), 1-based).
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Asserts the histogram estimate obeys the documented one-sided
    /// bound for p50/p95/p99: `exact <= estimate <= 2 * exact` (the
    /// estimate is a bucket upper edge clamped to the observed max).
    fn assert_quantile_bounds(values: &[u64], label: &str) {
        let h = LogHistogram::default();
        for v in values {
            h.record(*v);
        }
        let snap = h.snapshot();
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        for q in [0.50, 0.95, 0.99] {
            let exact = exact_quantile(&sorted, q);
            let est = snap.quantile(q);
            assert!(
                est >= exact,
                "{label} p{}: estimate {est} below exact {exact}",
                (q * 100.0) as u32
            );
            assert!(
                est <= exact.saturating_mul(2).max(1),
                "{label} p{}: estimate {est} above 2x exact {exact}",
                (q * 100.0) as u32
            );
        }
    }

    #[test]
    fn quantile_bounds_on_uniform_distribution() {
        let values: Vec<u64> = (1..=10_000).collect();
        assert_quantile_bounds(&values, "uniform");
    }

    #[test]
    fn quantile_bounds_on_exponential_distribution() {
        // Deterministic exponential-ish sample: inverse-CDF over an
        // evenly spaced grid, scaled to ~1ms mean in microseconds.
        let n = 8_192u64;
        let values: Vec<u64> = (1..n)
            .map(|i| {
                let u = i as f64 / n as f64;
                (-(1.0 - u).ln() * 1_000.0) as u64
            })
            .collect();
        assert_quantile_bounds(&values, "exponential");
    }

    #[test]
    fn quantile_bounds_on_single_bucket_distribution() {
        // All values land in one bucket: estimates clamp to the max.
        let values = vec![7u64; 1_000];
        assert_quantile_bounds(&values, "single-bucket");
        let h = LogHistogram::default();
        for v in &values {
            h.record(*v);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 7);
        assert_eq!(s.p95(), 7);
        assert_eq!(s.p99(), 7);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(json_escape("plain.name"), "plain.name");
    }

    #[test]
    fn instruments_are_thread_safe() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("shared");
        let h = reg.histogram("shared_lat");
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..1_000u64 {
                    c.inc();
                    h.record(i);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 4_000);
        assert_eq!(h.snapshot().count, 4_000);
    }
}
