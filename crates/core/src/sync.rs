//! Swappable synchronization primitives.
//!
//! Concurrency-sensitive modules ([`crate::obs`], [`crate::obs::trace`])
//! import `Mutex`/`MutexGuard` and the `atomic` types from here instead
//! of `std::sync`. A normal build re-exports `std`, so there is zero
//! cost; building with `RUSTFLAGS="--cfg loom"` swaps in the vendored
//! loom-lite primitives, whose `loom::model` harness then exhaustively
//! explores every thread interleaving of those modules (see
//! `crates/core/tests/loom.rs`).
//!
//! `Arc` and `OnceLock` intentionally stay `std` in both builds: the
//! model checks target the mutable hot-path state (counters, rings,
//! registration maps), not reference counting or one-time init.

#[cfg(loom)]
pub use loom::sync::{atomic, Mutex, MutexGuard};

#[cfg(not(loom))]
pub use std::sync::{atomic, Mutex, MutexGuard};
