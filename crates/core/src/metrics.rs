//! Engine metrics.
//!
//! These counters back the paper's evaluation metrics: the number of
//! executed operator calculations (Figure 9b/9d/9f), the number of slices
//! produced (Figure 8b/8d), events processed, and results emitted.
//!
//! [`EngineMetrics`] is the *snapshot* type of the engine-side counters:
//! single-threaded components (slicers, the naive baselines) accumulate
//! plain fields on the hot path, and snapshots are summed with
//! [`EngineMetrics::absorb`] and published into the unified
//! [`MetricsRegistry`] with
//! [`EngineMetrics::publish`] — so one JSON dump covers engine, network,
//! and latency instruments alike.

use crate::obs::MetricsRegistry;

/// Plain (non-atomic) counters owned by a single-threaded engine instance.
/// Decentralized deployments aggregate one `EngineMetrics` per node.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Events ingested.
    pub events: u64,
    /// Incremental operator executions ("calculations", Figure 9).
    pub calculations: u64,
    /// Slices sealed (Figure 8b/8d counts slices per minute).
    pub slices: u64,
    /// Final window results emitted (one per query per key per window).
    pub results: u64,
    /// Windows terminated.
    pub windows_closed: u64,
    /// Slice-partial merge operations performed during window assembly.
    pub merges: u64,
}

impl EngineMetrics {
    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = EngineMetrics::default();
    }

    /// Adds another metrics snapshot into this one (for summing across
    /// nodes of a cluster).
    pub fn absorb(&mut self, other: &EngineMetrics) {
        self.events += other.events;
        self.calculations += other.calculations;
        self.slices += other.slices;
        self.results += other.results;
        self.windows_closed += other.windows_closed;
        self.merges += other.merges;
    }

    /// Publishes the snapshot into `registry` under `prefix` (e.g.
    /// `"engine"` registers `engine.events`, `engine.calculations`, ...).
    ///
    /// Registry counters are raised to the snapshot values, so
    /// republishing a growing cumulative snapshot is idempotent.
    pub fn publish(&self, registry: &MetricsRegistry, prefix: &str) {
        for (field, value) in self.fields() {
            registry
                .counter(&format!("{prefix}.{field}"))
                .raise_to(value);
        }
    }

    fn fields(&self) -> [(&'static str, u64); 6] {
        [
            ("events", self.events),
            ("calculations", self.calculations),
            ("slices", self.slices),
            ("results", self.results),
            ("windows_closed", self.windows_closed),
            ("merges", self.merges),
        ]
    }

    /// Serializes the snapshot as a flat JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (field, value)) in self.fields().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{field}\":{value}"));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a = EngineMetrics {
            events: 1,
            calculations: 2,
            slices: 3,
            results: 4,
            windows_closed: 5,
            merges: 6,
        };
        let b = a.clone();
        a.absorb(&b);
        assert_eq!(a.events, 2);
        assert_eq!(a.calculations, 4);
        assert_eq!(a.slices, 6);
        assert_eq!(a.results, 8);
        assert_eq!(a.windows_closed, 10);
        assert_eq!(a.merges, 12);
    }

    #[test]
    fn reset_clears() {
        let mut a = EngineMetrics {
            events: 1,
            ..Default::default()
        };
        a.reset();
        assert_eq!(a, EngineMetrics::default());
    }

    #[test]
    fn publish_is_idempotent_per_value() {
        let registry = MetricsRegistry::new();
        let m = EngineMetrics {
            events: 10,
            results: 3,
            ..Default::default()
        };
        m.publish(&registry, "engine");
        m.publish(&registry, "engine");
        let snap = registry.snapshot();
        assert_eq!(snap.counters["engine.events"], 10);
        assert_eq!(snap.counters["engine.results"], 3);
    }

    #[test]
    fn json_has_all_fields() {
        let m = EngineMetrics {
            events: 7,
            merges: 2,
            ..Default::default()
        };
        let json = m.to_json();
        assert!(json.contains("\"events\":7"), "{json}");
        assert!(json.contains("\"merges\":2"), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
