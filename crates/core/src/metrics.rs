//! Engine metrics.
//!
//! These counters back the paper's evaluation metrics: the number of
//! executed operator calculations (Figure 9b/9d/9f), the number of slices
//! produced (Figure 8b/8d), events processed, and results emitted.

/// Plain (non-atomic) counters owned by a single-threaded engine instance.
/// Decentralized deployments aggregate one `EngineMetrics` per node.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Events ingested.
    pub events: u64,
    /// Incremental operator executions ("calculations", Figure 9).
    pub calculations: u64,
    /// Slices sealed (Figure 8b/8d counts slices per minute).
    pub slices: u64,
    /// Final window results emitted (one per query per key per window).
    pub results: u64,
    /// Windows terminated.
    pub windows_closed: u64,
}

impl EngineMetrics {
    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = EngineMetrics::default();
    }

    /// Adds another metrics snapshot into this one (for summing across
    /// nodes of a cluster).
    pub fn absorb(&mut self, other: &EngineMetrics) {
        self.events += other.events;
        self.calculations += other.calculations;
        self.slices += other.slices;
        self.results += other.results;
        self.windows_closed += other.windows_closed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a = EngineMetrics {
            events: 1,
            calculations: 2,
            slices: 3,
            results: 4,
            windows_closed: 5,
        };
        let b = a.clone();
        a.absorb(&b);
        assert_eq!(a.events, 2);
        assert_eq!(a.calculations, 4);
        assert_eq!(a.slices, 6);
        assert_eq!(a.results, 8);
        assert_eq!(a.windows_closed, 10);
    }

    #[test]
    fn reset_clears() {
        let mut a = EngineMetrics {
            events: 1,
            ..Default::default()
        };
        a.reset();
        assert_eq!(a, EngineMetrics::default());
    }
}
