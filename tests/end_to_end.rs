//! Cross-crate integration tests: the full Desis engine against the
//! naive baselines over generated workloads.

use desis::prelude::*;

/// Sorts results into a canonical order for comparison.
fn canon(mut results: Vec<QueryResult>) -> Vec<QueryResult> {
    results.sort_by(|a, b| {
        (a.query, a.window_start, a.window_end, a.key).cmp(&(
            b.query,
            b.window_start,
            b.window_end,
            b.key,
        ))
    });
    results
}

fn assert_equivalent(a: &[QueryResult], b: &[QueryResult], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: result counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            (x.query, x.key, x.window_start, x.window_end),
            (y.query, y.key, y.window_start, y.window_end),
            "{context}"
        );
        assert_eq!(x.values.len(), y.values.len(), "{context}");
        for (v, w) in x.values.iter().zip(&y.values) {
            match (v, w) {
                (Some(v), Some(w)) => {
                    let tolerance = 1e-9 * (1.0 + v.abs().max(w.abs()));
                    assert!((v - w).abs() <= tolerance, "{context}: {v} vs {w}");
                }
                (v, w) => assert_eq!(v, w, "{context}"),
            }
        }
    }
}

fn run_system(kind: SystemKind, queries: Vec<Query>, events: &[Event]) -> Vec<QueryResult> {
    let mut system = kind.build(queries).expect("valid queries");
    let mut out = Vec::new();
    for ev in events {
        system.on_event(ev);
        out.extend(system.drain_results());
    }
    let last = events.last().map_or(0, |e| e.ts);
    system.on_watermark(last + 60_000);
    out.extend(system.drain_results());
    canon(out)
}

/// Differential test over generated workloads: every system must produce
/// identical window results for mixed window types, measures, and
/// decomposable + holistic functions.
#[test]
fn all_systems_agree_on_generated_workloads() {
    for seed in [1u64, 7, 42] {
        let queries = QueryGenerator::new(QueryGenConfig {
            queries: 12,
            window_types: desis::gen::WindowTypeWeights::mixed(),
            length_range: (500, 3_000),
            count_length_range: (50, 500),
            functions: vec![
                AggFunction::Sum,
                AggFunction::Count,
                AggFunction::Average,
                AggFunction::Min,
                AggFunction::Max,
                AggFunction::Median,
                AggFunction::Quantile(0.75),
            ],
            functions_per_query: 1,
            predicate_keys: 0,
            first_id: 1,
            seed,
        })
        .generate();
        let events: Vec<Event> = DataGenerator::new(DataGenConfig {
            keys: 3,
            events_per_second: 1_000,
            markers: Some(desis::gen::MarkerConfig {
                channel: 0,
                window_ms: 800,
                pause_ms: 400,
            }),
            bursts: Some(desis::gen::BurstConfig {
                burst_ms: 1_500,
                gap_ms: 700,
            }),
            seed,
            ..Default::default()
        })
        .take(20_000)
        .collect();

        let reference = run_system(SystemKind::Desis, queries.clone(), &events);
        assert!(!reference.is_empty(), "seed {seed}: no results at all");
        for kind in [
            SystemKind::DeSw,
            SystemKind::Scotty,
            SystemKind::DeBucket,
            SystemKind::CeBuffer,
        ] {
            let other = run_system(kind, queries.clone(), &events);
            assert_equivalent(
                &reference,
                &other,
                &format!("seed {seed}, {}", kind.label()),
            );
        }
    }
}

/// Desis' headline efficiency claim: calculations per event stay flat as
/// concurrent queries grow, while non-sharing systems scale linearly.
#[test]
fn operator_sharing_keeps_calculations_flat() {
    let events: Vec<Event> = (0..20_000u64)
        .map(|i| Event::new(i, (i % 5) as u32, i as f64))
        .collect();
    let calcs = |kind: SystemKind, n: usize| -> u64 {
        let queries = desis::gen::spread_tumbling_queries(n, 10, AggFunction::Average);
        let mut p = kind.build(queries).unwrap();
        for ev in &events {
            p.on_event(ev);
        }
        p.metrics().calculations
    };
    // Desis: same operator work for 1 and 100 queries.
    assert_eq!(calcs(SystemKind::Desis, 1), calcs(SystemKind::Desis, 100));
    // DeBucket: ~100x the work.
    let one = calcs(SystemKind::DeBucket, 1);
    let hundred = calcs(SystemKind::DeBucket, 100);
    assert!(
        hundred > one * 50,
        "expected linear growth: {one} -> {hundred}"
    );
}

/// Queries can be added and removed while the stream runs (Section 3.2).
#[test]
fn runtime_query_management() {
    let mut engine = AggregationEngine::new(vec![Query::new(
        1,
        WindowSpec::tumbling_time(1_000).unwrap(),
        AggFunction::Sum,
    )])
    .unwrap();
    for ts in 0..5_000u64 {
        engine.on_event(&Event::new(ts, 0, 1.0));
        if ts == 1_500 {
            engine
                .add_query(Query::new(
                    2,
                    WindowSpec::tumbling_time(500).unwrap(),
                    AggFunction::Count,
                ))
                .unwrap();
        }
        if ts == 3_500 {
            engine.remove_query(2, false).unwrap();
        }
    }
    engine.on_watermark(10_000);
    let results = engine.drain_results();
    let q1: Vec<_> = results.iter().filter(|r| r.query == 1).collect();
    let q2: Vec<_> = results.iter().filter(|r| r.query == 2).collect();
    assert_eq!(q1.len(), 5);
    // Query 2 was live from ~1500 to ~3500: windows [2000,2500) ...
    // [3500,4000) (the window open at removal still drains).
    assert!(!q2.is_empty());
    assert!(q2.iter().all(|r| r.window_start >= 1_500));
    assert!(q2.iter().all(|r| r.window_end <= 4_000));
}

/// The umbrella prelude exposes the full stack.
#[test]
fn prelude_covers_the_stack() {
    let _engine = AggregationEngine::new(vec![]).unwrap();
    let _topo = Topology::star(1);
    let _gen = DataGenerator::new(DataGenConfig::default());
    let _kind = SystemKind::Desis;
    let _sys = DistributedSystem::Desis;
}
