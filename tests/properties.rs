//! Property-based tests (proptest) on the core invariants:
//!
//! * slicing correctness — the slicing engine and the naive per-window
//!   baseline agree on every result for arbitrary query mixes and streams;
//! * operator algebra — merges are associative/commutative and match
//!   single-pass aggregation under any split of the input;
//! * slice structure — slices partition the stream and windows are exact
//!   unions of slices;
//! * codec — wire round-trips are lossless for arbitrary messages.

use desis::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Generators.
// ---------------------------------------------------------------------

fn arb_function() -> impl Strategy<Value = AggFunction> {
    prop_oneof![
        Just(AggFunction::Sum),
        Just(AggFunction::Count),
        Just(AggFunction::Average),
        Just(AggFunction::Min),
        Just(AggFunction::Max),
        Just(AggFunction::Median),
        (1u32..100).prop_map(|p| AggFunction::Quantile(f64::from(p) / 100.0)),
    ]
}

fn arb_window() -> impl Strategy<Value = WindowSpec> {
    prop_oneof![
        (50u64..500).prop_map(|l| WindowSpec::tumbling_time(l).unwrap()),
        ((2u64..6), (25u64..100)).prop_map(|(k, s)| WindowSpec::sliding_time(k * s, s).unwrap()),
        (30u64..200).prop_map(|g| WindowSpec::session(g).unwrap()),
        (5u64..50).prop_map(|l| WindowSpec::tumbling_count(l).unwrap()),
        ((2u64..5), (3u64..15)).prop_map(|(k, s)| WindowSpec::sliding_count(k * s, s).unwrap()),
    ]
}

fn arb_queries(max: usize) -> impl Strategy<Value = Vec<Query>> {
    prop::collection::vec((arb_window(), arb_function()), 1..=max).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (w, f))| Query::new(i as u64 + 1, w, f))
            .collect()
    })
}

/// Streams as (delta_ts, key, value) triples: deltas keep time monotone.
fn arb_events(max: usize) -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec((0u64..40, 0u32..3, -100i32..100), 1..=max).prop_map(|raw| {
        let mut ts = 0;
        raw.into_iter()
            .map(|(delta, key, value)| {
                ts += delta;
                Event::new(ts, key, f64::from(value))
            })
            .collect()
    })
}

fn canon(mut results: Vec<QueryResult>) -> Vec<QueryResult> {
    results.sort_by(|a, b| {
        (a.query, a.window_start, a.window_end, a.key).cmp(&(
            b.query,
            b.window_start,
            b.window_end,
            b.key,
        ))
    });
    results
}

fn run_kind(kind: SystemKind, queries: Vec<Query>, events: &[Event]) -> Vec<QueryResult> {
    let mut p = kind.build(queries).expect("valid queries");
    for ev in events {
        p.on_event(ev);
    }
    let last = events.last().map_or(0, |e| e.ts);
    p.on_watermark(last + 10_000);
    canon(p.drain_results())
}

// ---------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Desis' shared slicing must agree with the naive per-window
    /// baseline for arbitrary query mixes and irregular streams.
    #[test]
    fn slicing_matches_naive_windows(
        queries in arb_queries(5),
        events in arb_events(400),
    ) {
        let desis = run_kind(SystemKind::Desis, queries.clone(), &events);
        let naive = run_kind(SystemKind::DeBucket, queries, &events);
        prop_assert_eq!(desis.len(), naive.len());
        for (a, b) in desis.iter().zip(&naive) {
            prop_assert_eq!(
                (a.query, a.key, a.window_start, a.window_end),
                (b.query, b.key, b.window_start, b.window_end)
            );
            for (x, y) in a.values.iter().zip(&b.values) {
                match (x, y) {
                    (Some(x), Some(y)) => {
                        prop_assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())),
                            "{} vs {}", x, y);
                    }
                    (x, y) => prop_assert_eq!(x, y),
                }
            }
        }
    }

    /// Merging operator partials is order-insensitive and matches the
    /// single-pass aggregate for any 3-way split of the values.
    #[test]
    fn operator_merge_is_split_invariant(
        values in prop::collection::vec(-1_000i32..1_000, 1..200),
        cut_a in 0usize..200,
        cut_b in 0usize..200,
        func in arb_function(),
    ) {
        let values: Vec<f64> = values.into_iter().map(f64::from).collect();
        let a = cut_a.min(values.len());
        let b = cut_b.min(values.len()).max(a);
        let set = func.operators();
        let fold = |chunk: &[f64]| {
            let mut bundle = OperatorBundle::new(set);
            for v in chunk {
                bundle.update(*v);
            }
            bundle.seal();
            bundle
        };
        let mut whole = fold(&values);
        whole.seal();

        // Split (left-to-right merge).
        let mut merged = fold(&values[..a]);
        merged.merge(&fold(&values[a..b]));
        merged.merge(&fold(&values[b..]));

        // Reversed merge order.
        let mut reversed = fold(&values[b..]);
        reversed.merge(&fold(&values[a..b]));
        reversed.merge(&fold(&values[..a]));

        let expect = whole.finalize(&func);
        for candidate in [merged.finalize(&func), reversed.finalize(&func)] {
            match (expect, candidate) {
                (Some(x), Some(y)) => {
                    // min/max/median/quantile are exact; sums accumulate
                    // rounding differences under reordering.
                    prop_assert!((x - y).abs() <= 1e-6 * (1.0 + x.abs()), "{} vs {}", x, y);
                }
                (x, y) => prop_assert_eq!(x, y),
            }
        }
    }

    /// Quantiles always lie within [min, max] of the input.
    #[test]
    fn quantiles_are_bounded(
        values in prop::collection::vec(-1e6f64..1e6, 1..300),
        level in 1u32..1000,
    ) {
        let func = AggFunction::Quantile(f64::from(level) / 1000.0);
        let mut bundle = OperatorBundle::new(func.operators());
        for v in &values {
            bundle.update(*v);
        }
        bundle.seal();
        let q = bundle.finalize(&func).expect("non-empty");
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(q >= min && q <= max, "{} outside [{}, {}]", q, min, max);
    }

    /// Slices partition the stream: consecutive, non-overlapping, and
    /// every window's slice range is well-formed.
    #[test]
    fn slices_partition_the_stream(
        queries in arb_queries(4),
        events in arb_events(300),
    ) {
        use desis::core::engine::{GroupSlicer, QueryAnalyzer};
        let groups = QueryAnalyzer::default().analyze(queries).unwrap();
        for group in groups {
            let mut slicer = GroupSlicer::new(group);
            let mut slices = Vec::new();
            for ev in &events {
                slicer.on_event(ev, &mut slices);
            }
            slicer.on_watermark(events.last().map_or(0, |e| e.ts) + 10_000, &mut slices);
            // Ids are consecutive from 0; ranges are ordered and abut.
            for (i, s) in slices.iter().enumerate() {
                prop_assert_eq!(s.id, i as u64);
                prop_assert!(s.start_ts <= s.end_ts);
                for end in &s.ends {
                    prop_assert!(end.first_slice <= end.last_slice);
                    prop_assert!(end.last_slice <= s.id);
                }
            }
            for pair in slices.windows(2) {
                prop_assert!(pair[0].end_ts <= pair[1].start_ts + 1,
                    "slices overlap: {:?} then {:?}",
                    (pair[0].start_ts, pair[0].end_ts),
                    (pair[1].start_ts, pair[1].end_ts));
            }
        }
    }

    /// Wire round-trip is lossless for arbitrary event batches in both
    /// codecs.
    #[test]
    fn codec_roundtrips_event_batches(
        raw in prop::collection::vec((0u64..u64::MAX / 2, 0u32..1000, -1e9f64..1e9), 0..100),
    ) {
        use desis::net::codec::CodecKind;
        use desis::net::message::Message;
        let events: Vec<Event> = raw
            .into_iter()
            .map(|(ts, key, value)| Event::new(ts, key, value))
            .collect();
        let msg = Message::Events(events);
        for codec in [CodecKind::Binary, CodecKind::Text] {
            let frame = codec.encode(&msg);
            let back = codec.decode(&frame).expect("roundtrip");
            prop_assert_eq!(&back, &msg);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `to_dsl` followed by `parse_query` reproduces the query exactly.
    #[test]
    fn dsl_round_trips_arbitrary_queries(
        window in arb_window(),
        funcs in prop::collection::vec(arb_function(), 1..4),
        pred_pick in 0u8..5,
        key in 0u32..100,
        lo in -1000i32..1000,
        span in 0i32..1000,
    ) {
        use desis::core::dsl::{parse_query, to_dsl};
        let predicate = match pred_pick {
            0 => Predicate::True,
            1 => Predicate::KeyEquals(key),
            2 => Predicate::ValueAbove(f64::from(lo)),
            3 => Predicate::ValueBelow(f64::from(lo)),
            _ => Predicate::ValueBetween(f64::from(lo), f64::from(lo + span)),
        };
        let query = Query::with_functions(9, window, funcs).filtered(predicate);
        let text = to_dsl(&query);
        let reparsed = parse_query(9, &text).expect("formatted query parses");
        prop_assert_eq!(query, reparsed, "{}", text);
    }

    /// The reorder buffer restores any boundedly-disordered stream.
    #[test]
    fn reorder_buffer_restores_bounded_disorder(
        deltas in prop::collection::vec((0u64..30, 0u64..20), 1..300),
    ) {
        use desis::core::engine::ReorderBuffer;
        // Build a disordered stream with bounded displacement.
        let mut ts = 100u64;
        let mut events = Vec::new();
        for (advance, jitter) in deltas {
            ts += advance;
            events.push(Event::new(ts.saturating_sub(jitter.min(20)), 0, 1.0));
        }
        let mut buf = ReorderBuffer::new(60);
        let mut out = Vec::new();
        let mut dropped = 0u64;
        for ev in &events {
            if !buf.push(*ev, &mut out) {
                dropped += 1;
            }
        }
        buf.flush(&mut out);
        prop_assert_eq!(dropped, buf.late_dropped());
        prop_assert_eq!(out.len() + dropped as usize, events.len());
        for pair in out.windows(2) {
            prop_assert!(pair[0].ts <= pair[1].ts);
        }
        // Displacement is at most 20+29 < 60, so nothing may be dropped.
        prop_assert_eq!(dropped, 0);
    }
}

/// Builds an arbitrary sealed bundle over the given values and functions.
fn arb_slice_message() -> impl Strategy<Value = desis::net::message::Message> {
    use desis::net::message::Message;
    let bundle = (
        prop::collection::vec(arb_function(), 1..4),
        prop::collection::vec(-1e6f64..1e6, 0..30),
    )
        .prop_map(|(funcs, values)| {
            let set = funcs
                .iter()
                .map(AggFunction::operators)
                .fold(OperatorSet::EMPTY, |a, b| a | b)
                .subsume_sorts();
            let mut bundle = OperatorBundle::new(set);
            for v in values {
                bundle.update(v);
            }
            bundle.seal();
            bundle
        });
    let data = prop::collection::vec(
        prop::collection::vec((0u32..50, bundle), 0..8),
        1..3,
    );
    (
        data,
        0u64..1_000,          // id
        0u64..1_000_000,      // start
        0u64..10_000,         // len
        prop::collection::vec((0u64..100, 0u64..20, 0u64..5_000, 0u64..5_000), 0..5),
        prop::collection::vec((0u64..100, 0u64..5_000, 0u64..5_000), 0..3),
    )
        .prop_map(|(data, id, start, len, raw_ends, raw_gaps)| {
            use desis::core::engine::{SealedSlice, SliceData};
            let end_ts = start + len;
            let mut slice_data = SliceData::new(data.len());
            for (sel, entries) in data.into_iter().enumerate() {
                for (key, bundle) in entries {
                    slice_data.per_selection[sel].insert(key, bundle);
                }
            }
            let ends = raw_ends
                .into_iter()
                .map(|(query, len_slices, back, wlen)| {
                    let last_slice = id.saturating_sub(back % (id + 1));
                    let w_end = end_ts.saturating_sub(back);
                    desis::core::engine::WindowEnd {
                        query,
                        first_slice: last_slice.saturating_sub(len_slices),
                        last_slice,
                        start_ts: w_end.saturating_sub(wlen),
                        end_ts: w_end,
                    }
                })
                .collect();
            let session_gaps = raw_gaps
                .into_iter()
                .map(|(query, back, glen)| {
                    let gap_end = end_ts.saturating_sub(back);
                    desis::core::engine::SessionGap {
                        query,
                        gap_start: gap_end.saturating_sub(glen),
                        gap_end,
                    }
                })
                .collect();
            Message::Slice {
                group: (id % 7) as u32,
                origin: (id % 11) as u32,
                coverage: 1 + (id % 3) as u32,
                partial: SealedSlice {
                    id,
                    start_ts: start,
                    end_ts,
                    data: slice_data,
                    ends,
                    session_gaps,
                    low_watermark: id.saturating_sub(2),
                    low_watermark_ts: start.saturating_sub(10),
                },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Slice partials — including delta-encoded window ends and session
    /// gaps — survive both wire formats bit-exactly.
    #[test]
    fn codec_roundtrips_arbitrary_slice_partials(msg in arb_slice_message()) {
        use desis::net::codec::CodecKind;
        for codec in [CodecKind::Binary, CodecKind::Text] {
            let frame = codec.encode(&msg);
            let back = codec.decode(&frame).expect("roundtrip");
            prop_assert_eq!(&back, &msg);
        }
    }
}

/// Long-running sliding windows must not accumulate slices: the
/// assembler's GC keeps retained partials bounded by the window span.
#[test]
fn memory_stays_bounded_over_long_streams() {
    use desis::core::engine::{Assembler, GroupSlicer, QueryAnalyzer};
    let queries = vec![
        Query::new(1, WindowSpec::sliding_time(5_000, 500).unwrap(), AggFunction::Average),
        Query::new(2, WindowSpec::tumbling_time(1_000).unwrap(), AggFunction::Max),
    ];
    let mut groups = QueryAnalyzer::default().analyze(queries).unwrap();
    let group = groups.remove(0);
    let mut slicer = GroupSlicer::new(group.clone());
    let mut assembler = Assembler::new(&group);
    let mut slices = Vec::new();
    let mut results = Vec::new();
    let mut max_retained = 0;
    for ts in (0..2_000_000u64).step_by(20) {
        slicer.on_event(&Event::new(ts, (ts % 4) as u32, 1.0), &mut slices);
        for s in slices.drain(..) {
            assembler.on_slice(s, &mut results);
        }
        max_retained = max_retained.max(assembler.retained_slices());
        results.clear();
    }
    // 5 s window / 500 ms slices -> at most ~11 live slices, ever.
    assert!(max_retained <= 12, "retained {max_retained} slices");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Decoding corrupted frames must fail gracefully (error, never panic,
    /// never runaway allocation).
    #[test]
    fn codec_survives_corrupted_frames(
        msg in arb_slice_message(),
        flips in prop::collection::vec((0usize..4096, 0u8..255), 1..8),
        truncate_to in 0usize..4096,
    ) {
        use desis::net::codec::CodecKind;
        for codec in [CodecKind::Binary, CodecKind::Text] {
            let mut frame = codec.encode(&msg);
            for (pos, xor) in &flips {
                if !frame.is_empty() {
                    let i = pos % frame.len();
                    frame[i] ^= xor | 1;
                }
            }
            frame.truncate(truncate_to.min(frame.len()));
            // Must not panic; Ok (a different but valid message) or Err
            // are both acceptable.
            let _ = codec.decode(&frame);
        }
    }
}
