//! Randomized property tests on the core invariants:
//!
//! * slicing correctness — the slicing engine and the naive per-window
//!   baseline agree on every result for arbitrary query mixes and streams;
//! * operator algebra — merges are associative/commutative and match
//!   single-pass aggregation under any split of the input;
//! * slice structure — slices partition the stream and windows are exact
//!   unions of slices;
//! * codec — wire round-trips are lossless for arbitrary messages.
//!
//! Cases are drawn from a seeded generator (`rand` shim, deterministic
//! per seed) and every assertion message carries the failing case's seed,
//! so a red run can be replayed exactly. Minimized failures graduate to
//! named regression tests in `tests/end_to_end.rs` / unit tests.

use desis::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runs `cases` generated cases, seeding each deterministically.
fn for_cases(cases: u64, mut body: impl FnMut(u64, &mut SmallRng)) {
    for case in 0..cases {
        // Decorrelate case streams: consecutive ints make poor seeds for
        // eyeballing, and a fixed offset keeps suites independent.
        let seed = 0xD515_0000 + case;
        let mut rng = SmallRng::seed_from_u64(seed);
        body(seed, &mut rng);
    }
}

// ---------------------------------------------------------------------
// Generators.
// ---------------------------------------------------------------------

fn arb_function(rng: &mut SmallRng) -> AggFunction {
    match rng.gen_range(0u32..7) {
        0 => AggFunction::Sum,
        1 => AggFunction::Count,
        2 => AggFunction::Average,
        3 => AggFunction::Min,
        4 => AggFunction::Max,
        5 => AggFunction::Median,
        _ => AggFunction::Quantile(f64::from(rng.gen_range(1u32..100)) / 100.0),
    }
}

fn arb_window(rng: &mut SmallRng) -> WindowSpec {
    match rng.gen_range(0u32..5) {
        0 => WindowSpec::tumbling_time(rng.gen_range(50u64..500)).unwrap(),
        1 => {
            let slide = rng.gen_range(25u64..100);
            let k = rng.gen_range(2u64..6);
            WindowSpec::sliding_time(k * slide, slide).unwrap()
        }
        2 => WindowSpec::session(rng.gen_range(30u64..200)).unwrap(),
        3 => WindowSpec::tumbling_count(rng.gen_range(5u64..50)).unwrap(),
        _ => {
            let slide = rng.gen_range(3u64..15);
            let k = rng.gen_range(2u64..5);
            WindowSpec::sliding_count(k * slide, slide).unwrap()
        }
    }
}

fn arb_queries(rng: &mut SmallRng, max: usize) -> Vec<Query> {
    let n = rng.gen_range(1..=max);
    (0..n)
        .map(|i| {
            let w = arb_window(rng);
            let f = arb_function(rng);
            Query::new(i as u64 + 1, w, f)
        })
        .collect()
}

/// Streams as (delta_ts, key, value) draws: deltas keep time monotone.
fn arb_events(rng: &mut SmallRng, max: usize) -> Vec<Event> {
    let n = rng.gen_range(1..=max);
    let mut ts = 0u64;
    (0..n)
        .map(|_| {
            ts += rng.gen_range(0u64..40);
            Event::new(
                ts,
                rng.gen_range(0u32..3),
                f64::from(rng.gen_range(-100i32..100)),
            )
        })
        .collect()
}

/// Query mixes that force every window class into one run: at least
/// one fixed-time, one session, one count, and one user-defined window,
/// plus random extras drawn from the general pool.
fn arb_mixed_queries(rng: &mut SmallRng) -> Vec<Query> {
    let count_filter = if rng.gen_bool(0.5) {
        Predicate::ValueAbove(0.0)
    } else {
        Predicate::True
    };
    let mut queries = vec![
        Query::new(
            1,
            WindowSpec::tumbling_time(rng.gen_range(100u64..400)).unwrap(),
            arb_function(rng),
        ),
        Query::new(
            2,
            WindowSpec::session(rng.gen_range(40u64..200)).unwrap(),
            arb_function(rng),
        ),
        Query::new(
            3,
            WindowSpec::tumbling_count(rng.gen_range(5u64..40)).unwrap(),
            arb_function(rng),
        )
        .filtered(count_filter),
        Query::new(
            4,
            WindowSpec::user_defined(rng.gen_range(0u32..2)),
            arb_function(rng),
        ),
    ];
    for extra in 0..rng.gen_range(0usize..3) {
        queries.push(Query::new(
            5 + extra as u64,
            arb_window(rng),
            arb_function(rng),
        ));
    }
    queries
}

/// Streams carrying broadcastable markers: ordinary draws interleaved
/// with Start/End markers on the channels `arb_mixed_queries` listens
/// on, so user-defined windows actually open and close.
fn arb_marked_events(rng: &mut SmallRng, max: usize) -> Vec<Event> {
    use desis::core::event::{Marker, MarkerKind};
    let n = rng.gen_range(32..=max);
    let mut ts = 0u64;
    (0..n)
        .map(|_| {
            ts += rng.gen_range(0u64..40);
            let key = rng.gen_range(0u32..3);
            let value = f64::from(rng.gen_range(-100i32..100));
            if rng.gen_bool(0.1) {
                let marker = Marker {
                    channel: rng.gen_range(0u32..2),
                    kind: if rng.gen_bool(0.5) {
                        MarkerKind::Start
                    } else {
                        MarkerKind::End
                    },
                };
                Event::with_marker(ts, key, value, marker)
            } else {
                Event::new(ts, key, value)
            }
        })
        .collect()
}

fn canon(mut results: Vec<QueryResult>) -> Vec<QueryResult> {
    results.sort_by(|a, b| {
        (a.query, a.window_start, a.window_end, a.key).cmp(&(
            b.query,
            b.window_start,
            b.window_end,
            b.key,
        ))
    });
    results
}

fn run_kind(kind: SystemKind, queries: Vec<Query>, events: &[Event]) -> Vec<QueryResult> {
    let mut p = kind.build(queries).expect("valid queries");
    for ev in events {
        p.on_event(ev);
    }
    let last = events.last().map_or(0, |e| e.ts);
    p.on_watermark(last + 10_000);
    canon(p.drain_results())
}

// ---------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------

/// Desis' shared slicing must agree with the naive per-window baseline
/// for arbitrary query mixes and irregular streams.
#[test]
fn slicing_matches_naive_windows() {
    for_cases(64, |seed, rng| {
        let queries = arb_queries(rng, 5);
        let events = arb_events(rng, 400);
        let desis = run_kind(SystemKind::Desis, queries.clone(), &events);
        let naive = run_kind(SystemKind::DeBucket, queries.clone(), &events);
        assert_eq!(desis.len(), naive.len(), "seed {seed}: {queries:?}");
        for (a, b) in desis.iter().zip(&naive) {
            assert_eq!(
                (a.query, a.key, a.window_start, a.window_end),
                (b.query, b.key, b.window_start, b.window_end),
                "seed {seed}"
            );
            for (x, y) in a.values.iter().zip(&b.values) {
                match (x, y) {
                    (Some(x), Some(y)) => {
                        assert!(
                            (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())),
                            "seed {seed}: {x} vs {y} for query {} window [{}, {})",
                            a.query,
                            a.window_start,
                            a.window_end
                        );
                    }
                    (x, y) => assert_eq!(x, y, "seed {seed}"),
                }
            }
        }
    });
}

/// Merging operator partials is order-insensitive and matches the
/// single-pass aggregate for any 3-way split of the values.
#[test]
fn operator_merge_is_split_invariant() {
    for_cases(64, |seed, rng| {
        let n = rng.gen_range(1usize..200);
        let values: Vec<f64> = (0..n)
            .map(|_| f64::from(rng.gen_range(-1_000i32..1_000)))
            .collect();
        let a = rng.gen_range(0usize..200).min(values.len());
        let b = rng.gen_range(0usize..200).min(values.len()).max(a);
        let func = arb_function(rng);
        let set = func.operators();
        let fold = |chunk: &[f64]| {
            let mut bundle = OperatorBundle::new(set);
            for v in chunk {
                bundle.update(*v);
            }
            bundle.seal();
            bundle
        };
        let mut whole = fold(&values);
        whole.seal();

        // Split (left-to-right merge).
        let mut merged = fold(&values[..a]);
        merged.merge(&fold(&values[a..b]));
        merged.merge(&fold(&values[b..]));

        // Reversed merge order.
        let mut reversed = fold(&values[b..]);
        reversed.merge(&fold(&values[a..b]));
        reversed.merge(&fold(&values[..a]));

        let expect = whole.finalize(&func);
        for candidate in [merged.finalize(&func), reversed.finalize(&func)] {
            match (expect, candidate) {
                (Some(x), Some(y)) => {
                    // min/max/median/quantile are exact; sums accumulate
                    // rounding differences under reordering.
                    assert!(
                        (x - y).abs() <= 1e-6 * (1.0 + x.abs()),
                        "seed {seed}: {x} vs {y} under {func:?}"
                    );
                }
                (x, y) => assert_eq!(x, y, "seed {seed}: {func:?}"),
            }
        }
    });
}

/// Quantiles always lie within [min, max] of the input.
#[test]
fn quantiles_are_bounded() {
    for_cases(64, |seed, rng| {
        let n = rng.gen_range(1usize..300);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e6f64..1e6)).collect();
        let func = AggFunction::Quantile(f64::from(rng.gen_range(1u32..1000)) / 1000.0);
        let mut bundle = OperatorBundle::new(func.operators());
        for v in &values {
            bundle.update(*v);
        }
        bundle.seal();
        let q = bundle.finalize(&func).expect("non-empty");
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            q >= min && q <= max,
            "seed {seed}: {q} outside [{min}, {max}] for {func:?}"
        );
    });
}

/// Slices partition the stream: consecutive, non-overlapping, and every
/// window's slice range is well-formed.
#[test]
fn slices_partition_the_stream() {
    use desis::core::engine::{GroupSlicer, QueryAnalyzer};
    for_cases(64, |seed, rng| {
        let queries = arb_queries(rng, 4);
        let events = arb_events(rng, 300);
        let groups = QueryAnalyzer::default().analyze(queries).unwrap();
        for group in groups {
            let mut slicer = GroupSlicer::new(group);
            let mut slices = Vec::new();
            for ev in &events {
                slicer.on_event(ev, &mut slices);
            }
            slicer.on_watermark(events.last().map_or(0, |e| e.ts) + 10_000, &mut slices);
            // Ids are consecutive from 0; ranges are ordered and abut.
            for (i, s) in slices.iter().enumerate() {
                assert_eq!(s.id, i as u64, "seed {seed}");
                assert!(s.start_ts <= s.end_ts, "seed {seed}");
                for end in &s.ends {
                    assert!(end.first_slice <= end.last_slice, "seed {seed}");
                    assert!(end.last_slice <= s.id, "seed {seed}");
                }
            }
            for pair in slices.windows(2) {
                assert!(
                    pair[0].end_ts <= pair[1].start_ts + 1,
                    "seed {seed}: slices overlap: {:?} then {:?}",
                    (pair[0].start_ts, pair[0].end_ts),
                    (pair[1].start_ts, pair[1].end_ts)
                );
            }
        }
    });
}

/// Wire round-trip is lossless for arbitrary event batches in both
/// codecs.
#[test]
fn codec_roundtrips_event_batches() {
    use desis::net::codec::CodecKind;
    use desis::net::message::Message;
    for_cases(64, |seed, rng| {
        let n = rng.gen_range(0usize..100);
        let events: Vec<Event> = (0..n)
            .map(|_| {
                Event::new(
                    rng.gen_range(0u64..u64::MAX / 2),
                    rng.gen_range(0u32..1000),
                    rng.gen_range(-1e9f64..1e9),
                )
            })
            .collect();
        let msg = Message::Events(events);
        for codec in [CodecKind::Binary, CodecKind::Text] {
            let frame = codec.encode(&msg);
            let back = codec.decode(&frame).expect("roundtrip");
            assert_eq!(back, msg, "seed {seed}: {codec:?}");
        }
    });
}

/// `to_dsl` followed by `parse_query` reproduces the query exactly.
#[test]
fn dsl_round_trips_arbitrary_queries() {
    use desis::core::dsl::{parse_query, to_dsl};
    for_cases(128, |seed, rng| {
        let window = arb_window(rng);
        let n_funcs = rng.gen_range(1usize..4);
        let funcs: Vec<AggFunction> = (0..n_funcs).map(|_| arb_function(rng)).collect();
        let key = rng.gen_range(0u32..100);
        let lo = f64::from(rng.gen_range(-1000i32..1000));
        let span = f64::from(rng.gen_range(0i32..1000));
        let predicate = match rng.gen_range(0u8..5) {
            0 => Predicate::True,
            1 => Predicate::KeyEquals(key),
            2 => Predicate::ValueAbove(lo),
            3 => Predicate::ValueBelow(lo),
            _ => Predicate::ValueBetween(lo, lo + span),
        };
        let query = Query::with_functions(9, window, funcs).filtered(predicate);
        let text = to_dsl(&query);
        let reparsed = parse_query(9, &text).expect("formatted query parses");
        assert_eq!(query, reparsed, "seed {seed}: {text}");
    });
}

/// The reorder buffer restores any boundedly-disordered stream.
#[test]
fn reorder_buffer_restores_bounded_disorder() {
    use desis::core::engine::ReorderBuffer;
    for_cases(128, |seed, rng| {
        // Build a disordered stream with bounded displacement.
        let n = rng.gen_range(1usize..300);
        let mut ts = 100u64;
        let mut events = Vec::new();
        for _ in 0..n {
            ts += rng.gen_range(0u64..30);
            let jitter = rng.gen_range(0u64..20);
            events.push(Event::new(ts.saturating_sub(jitter.min(20)), 0, 1.0));
        }
        let mut buf = ReorderBuffer::new(60);
        let mut out = Vec::new();
        let mut dropped = 0u64;
        for ev in &events {
            if !buf.push(*ev, &mut out) {
                dropped += 1;
            }
        }
        buf.flush(&mut out);
        assert_eq!(dropped, buf.late_dropped(), "seed {seed}");
        assert_eq!(out.len() + dropped as usize, events.len(), "seed {seed}");
        for pair in out.windows(2) {
            assert!(pair[0].ts <= pair[1].ts, "seed {seed}");
        }
        // Displacement is at most 20+29 < 60, so nothing may be dropped.
        assert_eq!(dropped, 0, "seed {seed}");
    });
}

/// Builds an arbitrary slice-partial message with sealed bundles,
/// delta-encodable window ends, and session gaps.
fn arb_slice_message(rng: &mut SmallRng) -> desis::net::message::Message {
    use desis::core::engine::{SealedSlice, SessionGap, SliceData, WindowEnd};
    use desis::net::message::Message;
    let arb_bundle = |rng: &mut SmallRng| {
        let n_funcs = rng.gen_range(1usize..4);
        let set = (0..n_funcs)
            .map(|_| arb_function(rng).operators())
            .fold(OperatorSet::EMPTY, |a, b| a | b)
            .subsume_sorts();
        let mut bundle = OperatorBundle::new(set);
        for _ in 0..rng.gen_range(0usize..30) {
            bundle.update(rng.gen_range(-1e6f64..1e6));
        }
        bundle.seal();
        bundle
    };
    let id = rng.gen_range(0u64..1_000);
    let start = rng.gen_range(0u64..1_000_000);
    let end_ts = start + rng.gen_range(0u64..10_000);
    let selections = rng.gen_range(1usize..3);
    let mut slice_data = SliceData::new(selections);
    for sel in 0..selections {
        for _ in 0..rng.gen_range(0usize..8) {
            let key = rng.gen_range(0u32..50);
            let bundle = arb_bundle(rng);
            slice_data.per_selection[sel].insert(key, bundle);
        }
    }
    let ends = (0..rng.gen_range(0usize..5))
        .map(|_| {
            let query = rng.gen_range(0u64..100);
            let len_slices = rng.gen_range(0u64..20);
            let back = rng.gen_range(0u64..5_000);
            let wlen = rng.gen_range(0u64..5_000);
            let last_slice = id.saturating_sub(back % (id + 1));
            let w_end = end_ts.saturating_sub(back);
            WindowEnd {
                query,
                first_slice: last_slice.saturating_sub(len_slices),
                last_slice,
                start_ts: w_end.saturating_sub(wlen),
                end_ts: w_end,
            }
        })
        .collect();
    let session_gaps = (0..rng.gen_range(0usize..3))
        .map(|_| {
            let query = rng.gen_range(0u64..100);
            let back = rng.gen_range(0u64..5_000);
            let glen = rng.gen_range(0u64..5_000);
            let gap_end = end_ts.saturating_sub(back);
            SessionGap {
                query,
                gap_start: gap_end.saturating_sub(glen),
                gap_end,
            }
        })
        .collect();
    Message::Slice {
        group: (id % 7) as u32,
        origin: (id % 11) as u32,
        coverage: 1 + (id % 3) as u32,
        partial: SealedSlice {
            id,
            start_ts: start,
            end_ts,
            data: slice_data,
            ends,
            session_gaps,
            low_watermark: id.saturating_sub(2),
            low_watermark_ts: start.saturating_sub(10),
            trace: if rng.gen_bool(0.5) {
                Some(TraceId::from_u64(rng.gen()))
            } else {
                None
            },
        },
    }
}

/// Slice partials — including delta-encoded window ends and session gaps
/// — survive both wire formats bit-exactly.
#[test]
fn codec_roundtrips_arbitrary_slice_partials() {
    use desis::net::codec::CodecKind;
    for_cases(96, |seed, rng| {
        let msg = arb_slice_message(rng);
        for codec in [CodecKind::Binary, CodecKind::Text] {
            let frame = codec.encode(&msg);
            let back = codec.decode(&frame).expect("roundtrip");
            assert_eq!(back, msg, "seed {seed}: {codec:?}");
        }
    });
}

/// Long-running sliding windows must not accumulate slices: the
/// assembler's GC keeps retained partials bounded by the window span.
#[test]
fn memory_stays_bounded_over_long_streams() {
    use desis::core::engine::{Assembler, GroupSlicer, QueryAnalyzer};
    let queries = vec![
        Query::new(
            1,
            WindowSpec::sliding_time(5_000, 500).unwrap(),
            AggFunction::Average,
        ),
        Query::new(
            2,
            WindowSpec::tumbling_time(1_000).unwrap(),
            AggFunction::Max,
        ),
    ];
    let mut groups = QueryAnalyzer::default().analyze(queries).unwrap();
    let group = groups.remove(0);
    let mut slicer = GroupSlicer::new(group.clone());
    let mut assembler = Assembler::new(&group);
    let mut slices = Vec::new();
    let mut results = Vec::new();
    let mut max_retained = 0;
    for ts in (0..2_000_000u64).step_by(20) {
        slicer.on_event(&Event::new(ts, (ts % 4) as u32, 1.0), &mut slices);
        for s in slices.drain(..) {
            assembler.on_slice(s, &mut results);
        }
        max_retained = max_retained.max(assembler.retained_slices());
        results.clear();
    }
    // 5 s window / 500 ms slices -> at most ~11 live slices, ever.
    assert!(max_retained <= 12, "retained {max_retained} slices");
}

// ---------------------------------------------------------------------
// Parallel engine differentials (PR 5).
// ---------------------------------------------------------------------

/// Feeds a [`ParallelEngine`] the stream with periodic watermark
/// barriers, then a final watermark + finish; returns the canonicalized
/// results. `lateness` sizes the reorder buffers for disordered inputs
/// (watermarks are then withheld until end-of-stream so nothing is
/// dropped by the barrier itself).
fn run_parallel(
    queries: Vec<Query>,
    events: &[Event],
    shards: usize,
    lateness: Option<u64>,
) -> Vec<QueryResult> {
    let mut cfg = ParallelConfig::new(shards);
    cfg.lateness = lateness;
    let mut engine = ParallelEngine::with_config(queries, cfg).expect("valid queries");
    let last = events.iter().map(|e| e.ts).max().unwrap_or(0);
    let mut out = Vec::new();
    let mut next_wm = 200u64;
    for ev in events {
        engine.on_event(ev);
        if lateness.is_none() && ev.ts >= next_wm {
            engine.on_watermark(ev.ts);
            out.extend(engine.drain_results());
            next_wm = ev.ts + 200;
        }
    }
    engine.on_watermark(last + 10_000);
    engine.finish();
    out.extend(engine.drain_results());
    assert_eq!(engine.late_dropped(), 0, "bounded disorder must not drop");
    canon(out)
}

/// Sequential reference: the classic [`AggregationEngine`] over the same
/// stream.
fn run_sequential(queries: Vec<Query>, events: &[Event]) -> Vec<QueryResult> {
    let mut engine = desis::core::engine::AggregationEngine::new(queries).expect("valid queries");
    for ev in events {
        engine.on_event(ev);
    }
    engine.on_watermark(events.iter().map(|e| e.ts).max().unwrap_or(0) + 10_000);
    canon(engine.drain_results())
}

/// The parallel engine is shard-count invariant: for arbitrary query
/// mixes (fixed, session, and count windows; decomposable and
/// sort-based functions) and arbitrary streams, every shard count
/// produces *exactly* the sequential engine's results — and both agree
/// with the naive per-window baseline.
///
/// Exactness holds because the generated values are integers: f64 sums
/// of integers below 2^53 are associative, so re-associating slice
/// merges across shards cannot change any result bit.
#[test]
fn parallel_engine_matches_sequential_across_shard_counts() {
    for_cases(32, |seed, rng| {
        let queries = arb_queries(rng, 5);
        let events = arb_events(rng, 400);
        let sequential = run_sequential(queries.clone(), &events);
        let naive = run_kind(SystemKind::DeBucket, queries.clone(), &events);
        assert_eq!(sequential.len(), naive.len(), "seed {seed}: {queries:?}");
        for shards in [1usize, 2, 4, 7] {
            let parallel = run_parallel(queries.clone(), &events, shards, None);
            assert_eq!(
                parallel, sequential,
                "seed {seed}, {shards} shards: {queries:?}"
            );
        }
    });
}

/// Repeating a sharded run reproduces the drained result stream
/// byte-for-byte — not just as a set: every intermediate drain is
/// canonically ordered, so run-to-run output is identical.
#[test]
fn parallel_engine_is_reproducible_run_to_run() {
    for_cases(16, |seed, rng| {
        let queries = arb_queries(rng, 4);
        let events = arb_events(rng, 300);
        let run = |queries: Vec<Query>| {
            let mut engine = ParallelEngine::new(queries, 4).expect("valid queries");
            let mut drains = Vec::new();
            for (i, ev) in events.iter().enumerate() {
                engine.on_event(ev);
                if i % 64 == 63 {
                    engine.on_watermark(ev.ts);
                    drains.push(engine.drain_results());
                }
            }
            engine.on_watermark(events.last().map_or(0, |e| e.ts) + 10_000);
            engine.finish();
            drains.push(engine.drain_results());
            drains
        };
        let first = run(queries.clone());
        let second = run(queries);
        assert_eq!(first, second, "seed {seed}");
        for drain in &first {
            for pair in drain.windows(2) {
                assert!(
                    (pair[0].query, pair[0].window_end, pair[0].key)
                        <= (pair[1].query, pair[1].window_end, pair[1].key),
                    "seed {seed}: drain not canonically ordered"
                );
            }
        }
    });
}

/// Out-of-order streams with bounded displacement, fed through the
/// parallel engine's reorder buffers, match the sequential engine over
/// the time-sorted stream — at every shard count, with zero drops.
#[test]
fn parallel_engine_restores_bounded_disorder() {
    for_cases(24, |seed, rng| {
        let queries = arb_queries(rng, 4);
        let mut events = arb_events(rng, 300);
        // Bounded jitter: pull each timestamp back by < 40; displacement
        // stays under the lateness budget of 100.
        for ev in &mut events {
            ev.ts = ev.ts.saturating_sub(rng.gen_range(0u64..40));
        }
        let mut sorted = events.clone();
        sorted.sort_by_key(|e| e.ts);
        let sequential = run_sequential(queries.clone(), &sorted);
        for shards in [1usize, 2, 4, 7] {
            let parallel = run_parallel(queries.clone(), &events, shards, Some(100));
            assert_eq!(
                parallel, sequential,
                "seed {seed}, {shards} shards: {queries:?}"
            );
        }
    });
}

/// Mixed workloads — fixed, session, count, and user-defined windows in
/// one run over marker-carrying streams — are shard-count invariant:
/// every shard count reproduces the sequential engine byte-for-byte,
/// and both agree with the naive per-window baseline's window shapes.
/// This is the differential that certifies no query class falls back to
/// a pinned sequential pipeline.
#[test]
fn parallel_engine_matches_sequential_on_mixed_unfixed_workloads() {
    for_cases(24, |seed, rng| {
        let queries = arb_mixed_queries(rng);
        let events = arb_marked_events(rng, 400);
        let sequential = run_sequential(queries.clone(), &events);
        let naive = run_kind(SystemKind::DeBucket, queries.clone(), &events);
        assert_eq!(sequential.len(), naive.len(), "seed {seed}: {queries:?}");
        for (a, b) in sequential.iter().zip(&naive) {
            assert_eq!(
                (a.query, a.key, a.window_start, a.window_end),
                (b.query, b.key, b.window_start, b.window_end),
                "seed {seed}"
            );
        }
        for shards in [1usize, 2, 4, 7] {
            let parallel = run_parallel(queries.clone(), &events, shards, None);
            assert_eq!(
                parallel, sequential,
                "seed {seed}, {shards} shards: {queries:?}"
            );
        }
    });
}

/// Mixed workloads under bounded disorder: marker-carrying streams with
/// bounded displacement, restored by the shard reorder buffers, match
/// the sequential engine over the time-sorted stream at every shard
/// count with zero drops.
#[test]
fn mixed_unfixed_workloads_restore_bounded_disorder() {
    for_cases(16, |seed, rng| {
        let queries = arb_mixed_queries(rng);
        let mut events = arb_marked_events(rng, 300);
        for ev in &mut events {
            ev.ts = ev.ts.saturating_sub(rng.gen_range(0u64..40));
        }
        let mut sorted = events.clone();
        sorted.sort_by_key(|e| e.ts);
        let sequential = run_sequential(queries.clone(), &sorted);
        for shards in [1usize, 2, 4, 7] {
            let parallel = run_parallel(queries.clone(), &events, shards, Some(100));
            assert_eq!(
                parallel, sequential,
                "seed {seed}, {shards} shards: {queries:?}"
            );
        }
    });
}

/// Decoding corrupted frames must fail gracefully (error, never panic,
/// never runaway allocation).
#[test]
fn codec_survives_corrupted_frames() {
    use desis::net::codec::CodecKind;
    for_cases(128, |_seed, rng| {
        let msg = arb_slice_message(rng);
        let n_flips = rng.gen_range(1usize..8);
        let flips: Vec<(usize, u8)> = (0..n_flips)
            .map(|_| (rng.gen_range(0usize..4096), rng.gen_range(0u8..255)))
            .collect();
        let truncate_to = rng.gen_range(0usize..4096);
        for codec in [CodecKind::Binary, CodecKind::Text] {
            let mut frame = codec.encode(&msg);
            for (pos, xor) in &flips {
                if !frame.is_empty() {
                    let i = pos % frame.len();
                    frame[i] ^= xor | 1;
                }
            }
            frame.truncate(truncate_to.min(frame.len()));
            // Must not panic; Ok (a different but valid message) or Err
            // are both acceptable.
            let _ = codec.decode(&frame);
        }
    });
}
