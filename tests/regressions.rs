//! Named regression tests pinning semantic edge cases:
//!
//! * Session-gap boundaries (paper Section 2.1): an event arriving at
//!   exactly `last_ts + gap` starts a *new* session — in the single-node
//!   engine, in the naive baselines, and across decentralized streams.
//! * Quantile/median edges: `quantile(0)` / `quantile(1)` are min/max,
//!   single-element windows, and even-length median interpolation must
//!   agree between merge-then-finalize and naive single-pass execution.
//! * Parallel-engine edges graduated from `tests/properties.rs`: drains
//!   are canonically ordered, key counts below the shard count leave
//!   permanently empty shards whose watermark forcing must still release
//!   merged slices, and batch boundaries landing exactly on a watermark
//!   must not double-feed or drop the boundary event.
//! * Hash-order freedom, graduated from desis-lint's `no-unordered-iter`
//!   sweep: assemblers and mergers emit in key order, frame bytes are a
//!   pure function of slice content, and cluster reports are node-ordered
//!   and run-twice identical.

use desis::prelude::*;

fn canon(mut results: Vec<QueryResult>) -> Vec<QueryResult> {
    results.sort_by(|a, b| {
        (a.query, a.window_start, a.window_end, a.key).cmp(&(
            b.query,
            b.window_start,
            b.window_end,
            b.key,
        ))
    });
    results
}

fn run_engine(queries: Vec<Query>, events: &[Event], final_wm: Timestamp) -> Vec<QueryResult> {
    let mut engine = AggregationEngine::new(queries).unwrap();
    for ev in events {
        engine.on_event(ev);
    }
    engine.on_watermark(final_wm);
    canon(engine.drain_results())
}

fn run_system(kind: SystemKind, queries: Vec<Query>, events: &[Event]) -> Vec<QueryResult> {
    let mut system = kind.build(queries).expect("valid queries");
    let mut out = Vec::new();
    for ev in events {
        system.on_event(ev);
        out.extend(system.drain_results());
    }
    let last = events.last().map_or(0, |e| e.ts);
    system.on_watermark(last + 60_000);
    out.extend(system.drain_results());
    canon(out)
}

/// Section 2.1: a session covers events closer than `gap`; an event at
/// exactly `last_ts + gap` no longer belongs to it.
#[test]
fn session_closes_exactly_at_gap_boundary() {
    let queries = || {
        vec![Query::new(
            1,
            WindowSpec::session(100).unwrap(),
            AggFunction::Count,
        )]
    };
    // ts 150 == 50 + gap: boundary-touching, so a second session starts.
    let touching = [
        Event::new(0, 0, 1.0),
        Event::new(50, 0, 1.0),
        Event::new(150, 0, 1.0),
    ];
    let results = run_engine(queries(), &touching, 1_000);
    assert_eq!(results.len(), 2, "{results:?}");
    assert_eq!(
        (results[0].window_start, results[0].window_end),
        (0, 150),
        "first session is [0, 50+gap)"
    );
    assert_eq!(results[0].values, vec![Some(2.0)]);
    assert_eq!((results[1].window_start, results[1].window_end), (150, 250));
    assert_eq!(results[1].values, vec![Some(1.0)]);

    // One tick earlier the session is extended instead.
    let extending = [
        Event::new(0, 0, 1.0),
        Event::new(50, 0, 1.0),
        Event::new(149, 0, 1.0),
    ];
    let results = run_engine(queries(), &extending, 1_000);
    assert_eq!(results.len(), 1, "{results:?}");
    assert_eq!((results[0].window_start, results[0].window_end), (0, 249));
    assert_eq!(results[0].values, vec![Some(3.0)]);
}

/// The boundary semantics hold identically in every baseline system.
#[test]
fn session_boundary_agrees_with_naive_baselines() {
    let queries = || {
        vec![Query::new(
            1,
            WindowSpec::session(100).unwrap(),
            AggFunction::Sum,
        )]
    };
    // Sessions that touch at the boundary, twice, plus a clear gap.
    let events: Vec<Event> = [0u64, 60, 160, 260, 1_000, 1_099, 1_199]
        .iter()
        .map(|&ts| Event::new(ts, 0, 1.0))
        .collect();
    let reference = run_engine(queries(), &events, 60_000);
    assert!(!reference.is_empty());
    for kind in [
        SystemKind::Desis,
        SystemKind::DeSw,
        SystemKind::Scotty,
        SystemKind::DeBucket,
        SystemKind::CeBuffer,
    ] {
        let got = run_system(kind, queries(), &events);
        assert_eq!(
            got,
            reference,
            "{} disagrees on session boundaries",
            kind.label()
        );
    }
}

/// Gap-covering merges at the decentralized root (Section 5.1.2): two
/// local streams whose sessions touch exactly at the gap boundary stay
/// separate sessions; overlapping ones merge into one.
#[test]
fn decentralized_touching_session_gaps_stay_separate() {
    let queries = vec![Query::new(
        1,
        WindowSpec::session(100).unwrap(),
        AggFunction::Count,
    )];
    let run = |feed_b: Vec<Event>| {
        let feed_a = vec![Event::new(0, 0, 1.0), Event::new(10, 0, 1.0)];
        let cfg = ClusterConfig::new(DistributedSystem::Desis, queries.clone(), Topology::star(2));
        let mut engine = AggregationEngine::new(queries.clone()).unwrap();
        let mut merged: Vec<Event> = feed_a.iter().chain(&feed_b).copied().collect();
        merged.sort_by_key(|e| e.ts);
        for ev in &merged {
            engine.on_event(ev);
        }
        engine.on_watermark(60_000);
        let reference = canon(engine.drain_results());
        let report = run_cluster(cfg, vec![feed_a, feed_b]).unwrap();
        (canon(report.results), reference)
    };

    // Stream B starts at exactly 10 + gap: two separate sessions.
    let (touching, reference) = run(vec![Event::new(110, 0, 1.0), Event::new(120, 0, 1.0)]);
    assert_eq!(touching, reference);
    assert_eq!(touching.len(), 2, "{touching:?}");
    assert_eq!((touching[0].window_start, touching[0].window_end), (0, 110));
    assert_eq!(
        (touching[1].window_start, touching[1].window_end),
        (110, 220)
    );

    // One tick earlier the cross-stream sessions overlap and merge.
    let (overlapping, reference) = run(vec![Event::new(109, 0, 1.0), Event::new(120, 0, 1.0)]);
    assert_eq!(overlapping, reference);
    assert_eq!(overlapping.len(), 1, "{overlapping:?}");
    assert_eq!(
        (overlapping[0].window_start, overlapping[0].window_end),
        (0, 220)
    );
    assert_eq!(overlapping[0].values, vec![Some(4.0)]);
}

/// `quantile(1)` equals max and `quantile(0)` equals min, per window.
#[test]
fn quantile_one_is_max_and_zero_is_min() {
    let queries = vec![
        Query::new(
            1,
            WindowSpec::tumbling_time(100).unwrap(),
            AggFunction::Quantile(1.0),
        ),
        Query::new(2, WindowSpec::tumbling_time(100).unwrap(), AggFunction::Max),
        Query::new(
            3,
            WindowSpec::tumbling_time(100).unwrap(),
            AggFunction::Quantile(0.0),
        ),
        Query::new(4, WindowSpec::tumbling_time(100).unwrap(), AggFunction::Min),
    ];
    let events: Vec<Event> = (0..400u64)
        .map(|i| Event::new(i, 0, ((i * 37) % 101) as f64))
        .collect();
    let results = run_engine(queries, &events, 1_000);
    let series = |q: u64| -> Vec<Option<f64>> {
        results
            .iter()
            .filter(|r| r.query == q)
            .flat_map(|r| r.values.clone())
            .collect()
    };
    let max = series(2);
    assert_eq!(max.len(), 4);
    assert_eq!(series(1), max, "quantile(1) must equal max");
    assert_eq!(series(3), series(4), "quantile(0) must equal min");
}

/// A single-element window returns its element for every quantile level.
#[test]
fn quantile_single_element_window() {
    let queries = vec![
        Query::new(
            1,
            WindowSpec::tumbling_time(100).unwrap(),
            AggFunction::Quantile(0.37),
        ),
        Query::new(
            2,
            WindowSpec::tumbling_time(100).unwrap(),
            AggFunction::Median,
        ),
        Query::new(
            3,
            WindowSpec::tumbling_time(100).unwrap(),
            AggFunction::Quantile(1.0),
        ),
    ];
    let events = [Event::new(10, 0, 42.5)];
    let results = run_engine(queries, &events, 1_000);
    assert_eq!(results.len(), 3, "{results:?}");
    for r in &results {
        assert_eq!(r.values, vec![Some(42.5)], "query {}", r.query);
    }
}

/// Even-length windows interpolate the median (type-7, like numpy), and
/// merge-then-finalize agrees with the naive single-pass baselines.
#[test]
fn even_length_median_interpolates_and_matches_naive() {
    let queries = || {
        vec![Query::new(
            1,
            WindowSpec::tumbling_time(100).unwrap(),
            AggFunction::Median,
        )]
    };
    // Window [0, 100) holds {1, 2, 3, 4} out of order: median 2.5.
    let events = [
        Event::new(0, 0, 3.0),
        Event::new(20, 0, 1.0),
        Event::new(40, 0, 4.0),
        Event::new(60, 0, 2.0),
    ];
    let results = run_engine(queries(), &events, 1_000);
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].values, vec![Some(2.5)]);
    for kind in [
        SystemKind::Desis,
        SystemKind::DeBucket,
        SystemKind::CeBuffer,
    ] {
        let got = run_system(kind, queries(), &events);
        assert_eq!(got, results, "{} median disagrees", kind.label());
    }
    // The same window assembled from decentralized per-stream partials
    // (sorted-run merge at the root) produces the same interpolation.
    let cfg = ClusterConfig::new(DistributedSystem::Desis, queries(), Topology::star(2));
    let feeds = vec![
        vec![Event::new(0, 0, 3.0), Event::new(40, 0, 4.0)],
        vec![Event::new(20, 0, 1.0), Event::new(60, 0, 2.0)],
    ];
    let report = run_cluster(cfg, feeds).unwrap();
    let cluster_results = canon(report.results);
    assert_eq!(cluster_results.len(), 1);
    assert_eq!(cluster_results[0].values, vec![Some(2.5)]);
}

// ---------------------------------------------------------------------
// Parallel engine (PR 5), graduated from tests/properties.rs.
// ---------------------------------------------------------------------

fn parallel_mixed_queries() -> Vec<Query> {
    vec![
        Query::new(1, WindowSpec::tumbling_time(500).unwrap(), AggFunction::Sum),
        Query::new(
            2,
            WindowSpec::sliding_time(1_000, 250).unwrap(),
            AggFunction::Median,
        ),
        Query::new(3, WindowSpec::session(200).unwrap(), AggFunction::Max),
    ]
}

fn run_parallel_engine(
    queries: Vec<Query>,
    events: &[Event],
    shards: usize,
    final_wm: Timestamp,
) -> Vec<QueryResult> {
    let mut engine = ParallelEngine::new(queries, shards).unwrap();
    for ev in events {
        engine.on_event(ev);
    }
    engine.on_watermark(final_wm);
    engine.finish();
    engine.drain_results()
}

/// Every drain — including mid-stream barrier drains — comes out in
/// canonical (query, window-end, key) order, strictly sorted with no
/// duplicate result rows.
#[test]
fn parallel_drains_are_strictly_sorted_without_duplicates() {
    let mut engine = ParallelEngine::new(parallel_mixed_queries(), 4).unwrap();
    let mut all = Vec::new();
    for i in 0..5_000u64 {
        engine.on_event(&Event::new(i, (i % 6) as u32, (i % 23) as f64));
        if i % 700 == 699 {
            engine.on_watermark(i + 1);
            let drain = engine.drain_results();
            for pair in drain.windows(2) {
                let a = &pair[0];
                let b = &pair[1];
                assert!(
                    (a.query, a.window_end, a.key, a.window_start)
                        < (b.query, b.window_end, b.key, b.window_start),
                    "duplicate or misordered: {a:?} then {b:?}"
                );
            }
            all.extend(drain);
        }
    }
    engine.on_watermark(10_000);
    engine.finish();
    all.extend(engine.drain_results());
    assert_eq!(
        canon(all),
        run_engine(
            parallel_mixed_queries(),
            &(0..5_000u64)
                .map(|i| Event::new(i, (i % 6) as u32, (i % 23) as f64))
                .collect::<Vec<_>>(),
            10_000
        )
    );
}

/// Fewer keys than shards: most shards never see an event, and a single
/// hot key pins all traffic to one shard. Watermark forcing must still
/// complete every merged slice and the results must match sequential.
#[test]
fn parallel_with_fewer_keys_than_shards_and_single_key() {
    for keys in [1u32, 2] {
        let events: Vec<Event> = (0..3_000u64)
            .map(|i| Event::new(i, (i % u64::from(keys)) as u32, i as f64))
            .collect();
        let reference = run_engine(parallel_mixed_queries(), &events, 8_000);
        for shards in [4usize, 7] {
            let got = canon(run_parallel_engine(
                parallel_mixed_queries(),
                &events,
                shards,
                8_000,
            ));
            assert_eq!(got, reference, "keys={keys} shards={shards}");
        }
    }
}

/// A batch boundary landing exactly on a watermark barrier: the boundary
/// event must be flushed to its shard before the barrier (not dropped,
/// not replayed into the next batch).
#[test]
fn parallel_batch_boundary_at_watermark_is_exact() {
    let queries = vec![Query::new(
        1,
        WindowSpec::tumbling_time(256).unwrap(),
        AggFunction::Count,
    )];
    let events: Vec<Event> = (0..2_048u64)
        .map(|i| Event::new(i, (i % 3) as u32, 1.0))
        .collect();
    let mut cfg = ParallelConfig::new(4);
    cfg.batch_size = 256; // inlet flush lines up with the window length
    let mut engine = ParallelEngine::with_config(queries.clone(), cfg).unwrap();
    let mut out = Vec::new();
    for chunk in events.chunks(256) {
        engine.on_batch(&EventBatch::from(chunk.to_vec()));
        // Watermark exactly at the first timestamp past the chunk.
        engine.on_watermark(chunk.last().unwrap().ts + 1);
        out.extend(engine.drain_results());
    }
    engine.on_watermark(4_096);
    engine.finish();
    out.extend(engine.drain_results());
    let reference = run_engine(queries, &events, 4_096);
    assert_eq!(canon(out), reference);
    // Count windows: every one of the 8 windows holds exactly 256 events.
    let total: f64 = reference
        .iter()
        .flat_map(|r| r.values.iter().flatten())
        .sum();
    assert_eq!(total, 2_048.0);
}

/// An empty stream with watermarks: no results, no panics, clean finish
/// at every shard count.
#[test]
fn parallel_empty_stream_finishes_cleanly() {
    for shards in [1usize, 4] {
        let mut engine = ParallelEngine::new(parallel_mixed_queries(), shards).unwrap();
        engine.on_watermark(1_000);
        engine.on_watermark(2_000);
        engine.finish();
        assert!(engine.drain_results().is_empty());
        assert_eq!(engine.shard_panics(), 0);
    }
}

// ---------------------------------------------------------------------
// Hash-order regressions, graduated from desis-lint's no-unordered-iter
// sweep: emission, frame bytes, and reports must never depend on hash
// iteration order. One named test per converted site; each feeds keys
// in descending order so a hash-ordered emission would (with
// overwhelming probability) fail.
// ---------------------------------------------------------------------

/// `core::engine::assembler`: window results come out in ascending key
/// order straight from the assembler, before any canonical drain sort.
#[test]
fn assembler_emits_window_results_in_key_order() {
    let q = Query::new(
        1,
        WindowSpec::tumbling_time(1_000).unwrap(),
        AggFunction::Sum,
    );
    let mut groups = QueryAnalyzer::default().analyze(vec![q]).unwrap();
    let group = groups.remove(0);
    let mut slicer = GroupSlicer::new(group.clone());
    let mut assembler = Assembler::new(&group);
    let mut slices = Vec::new();
    let mut results = Vec::new();
    for i in 0..64u64 {
        // Keys descend as timestamps ascend: insertion order is 63..0.
        slicer.on_event(&Event::new(i, 63 - i as u32, 1.0), &mut slices);
    }
    slicer.on_watermark(1_000, &mut slices);
    for s in slices.drain(..) {
        assembler.on_slice(s, &mut results);
    }
    assert_eq!(results.len(), 64, "{results:?}");
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.key, i as u32, "emission is not key-sorted: {results:?}");
    }
}

/// `core::engine::parallel` (`FixedAssembler`): the sharded collector's
/// merged fixed-window emission is key-sorted as well — keys land on
/// shards by hash and are re-merged, so this pins the collector-side
/// sort, not the shard order.
#[test]
fn parallel_fixed_assembler_emits_in_key_order() {
    let q = Query::new(
        1,
        WindowSpec::tumbling_time(1_000).unwrap(),
        AggFunction::Sum,
    );
    let events: Vec<Event> = (0..64u64)
        .map(|i| Event::new(i, 63 - i as u32, 1.0))
        .collect();
    for shards in [1usize, 4] {
        let results = run_parallel_engine(vec![q.clone()], &events, shards, 2_000);
        assert_eq!(results.len(), 64, "shards={shards}");
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.key, i as u32, "shards={shards}: {results:?}");
        }
    }
}

/// `net::merge` (`TimeAssembler`): the root's window assembly over
/// merged slices emits in ascending key order too.
#[test]
fn time_assembler_emits_window_results_in_key_order() {
    use desis::net::merge::TimeAssembler;
    let q = Query::new(
        1,
        WindowSpec::tumbling_time(1_000).unwrap(),
        AggFunction::Sum,
    );
    let mut groups = QueryAnalyzer::default().analyze(vec![q]).unwrap();
    let group = groups.remove(0);
    let mut slicer = GroupSlicer::new(group.clone());
    let mut assembler = TimeAssembler::new(&group);
    let mut slices = Vec::new();
    let mut results = Vec::new();
    for i in 0..64u64 {
        slicer.on_event(&Event::new(i, 63 - i as u32, 1.0), &mut slices);
    }
    slicer.on_watermark(1_000, &mut slices);
    for s in slices.drain(..) {
        assembler.on_slice(s, &mut results);
    }
    assert_eq!(results.len(), 64, "{results:?}");
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.key, i as u32, "emission is not key-sorted: {results:?}");
    }
}

/// `net::codec`: frame bytes are a pure function of slice *content* —
/// two maps holding the same keys and bundles encode identically no
/// matter what insertion/removal history shaped their bucket layout.
/// (Fault placement and per-node byte counts depend on frame bytes, so
/// hash-ordered encoding would make chaos runs irreproducible.)
#[test]
fn slice_frame_bytes_are_insertion_order_independent() {
    use desis::core::engine::slice::{SessionGap, SliceData};

    fn bundle(v: f64) -> OperatorBundle {
        let mut b = OperatorBundle::new(AggFunction::Sum.operators());
        b.update(v);
        b.seal();
        b
    }
    fn slice_with(data: SliceData) -> SealedSlice {
        SealedSlice {
            id: 7,
            start_ts: 0,
            end_ts: 1_000,
            data,
            ends: vec![WindowEnd {
                query: 1,
                first_slice: 7,
                last_slice: 7,
                start_ts: 0,
                end_ts: 1_000,
            }],
            session_gaps: vec![SessionGap {
                query: 1,
                gap_start: 900,
                gap_end: 1_000,
            }],
            low_watermark: 7,
            low_watermark_ts: 500,
            trace: None,
        }
    }

    // Same logical content, three different map histories: ascending
    // insertion, descending insertion, and descending after a batch of
    // inserted-then-removed dummies (perturbs capacity/bucket layout).
    let mut ascending = SliceData::new(1);
    for k in 0..32u32 {
        ascending.per_selection[0].insert(k, bundle(f64::from(k)));
    }
    let mut descending = SliceData::new(1);
    for k in (0..32u32).rev() {
        descending.per_selection[0].insert(k, bundle(f64::from(k)));
    }
    let mut churned = SliceData::new(1);
    for k in 1_000..1_200u32 {
        churned.per_selection[0].insert(k, bundle(0.0));
    }
    for k in 1_000..1_200u32 {
        churned.per_selection[0].remove(&k);
    }
    for k in (0..32u32).rev() {
        churned.per_selection[0].insert(k, bundle(f64::from(k)));
    }

    let encode = |data: SliceData| {
        CodecKind::Binary.encode(&Message::Slice {
            group: 0,
            origin: 3,
            coverage: 1,
            partial: slice_with(data),
        })
    };
    let reference = encode(ascending);
    assert_eq!(reference, encode(descending), "insertion order leaked");
    assert_eq!(reference, encode(churned), "bucket history leaked");
}

/// `net::cluster` (`ClusterReport`): `bytes_by_node` iterates in node-id
/// order and the whole report is identical across two runs of the same
/// plan — byte counts included, which also pins the intermediate/root
/// frame emission order (`net::node` B-tree groups).
#[test]
fn cluster_report_is_node_ordered_and_run_twice_identical() {
    let queries = vec![
        Query::new(1, WindowSpec::tumbling_time(500).unwrap(), AggFunction::Sum),
        Query::new(2, WindowSpec::session(300).unwrap(), AggFunction::Count),
    ];
    let feeds: Vec<Vec<Event>> = (0..2u64)
        .map(|i| {
            DataGenerator::new(DataGenConfig {
                keys: 8,
                events_per_second: 1_000,
                seed: 40 + i,
                ..Default::default()
            })
            .take(4_000)
            .collect()
        })
        .collect();
    let run = || {
        let cfg = ClusterConfig::new(
            DistributedSystem::Desis,
            queries.clone(),
            Topology::three_tier(1, 2),
        );
        run_cluster(cfg, feeds.clone()).unwrap()
    };
    let a = run();
    let b = run();
    assert!(!a.results.is_empty());
    let nodes: Vec<NodeId> = a.bytes_by_node.keys().copied().collect();
    let mut sorted = nodes.clone();
    sorted.sort_unstable();
    assert_eq!(nodes, sorted, "bytes_by_node not in node order");
    assert_eq!(a.results, b.results, "results differ across runs");
    assert_eq!(
        a.bytes_by_node, b.bytes_by_node,
        "per-node byte counts differ across runs: frame bytes are not \
         content-deterministic"
    );
}

/// `net::merge` (`UnfixedRootMerger` B-tree queues): session windows
/// merged at the root across children emit identically (results *and*
/// bytes) across two runs of the same plan.
#[test]
fn unfixed_root_merge_is_run_twice_identical() {
    let queries = vec![Query::new(
        1,
        WindowSpec::session(400).unwrap(),
        AggFunction::Max,
    )];
    let feeds: Vec<Vec<Event>> = (0..3u64)
        .map(|i| {
            DataGenerator::new(DataGenConfig {
                keys: 6,
                events_per_second: 1_000,
                bursts: Some(desis::gen::BurstConfig {
                    burst_ms: 800,
                    gap_ms: 600,
                }),
                seed: 70 + i,
                ..Default::default()
            })
            .take(3_000)
            .collect()
        })
        .collect();
    let run = || {
        let cfg = ClusterConfig::new(DistributedSystem::Desis, queries.clone(), Topology::star(3));
        run_cluster(cfg, feeds.clone()).unwrap()
    };
    let a = run();
    let b = run();
    assert!(!a.results.is_empty());
    assert_eq!(a.results, b.results, "session results differ across runs");
    assert_eq!(a.bytes_by_node, b.bytes_by_node);
}
