//! Cross-crate integration tests for the decentralized substrate: every
//! distributed deployment must agree with a single-node reference, and
//! the paper's network-efficiency claims must hold end to end.

use desis::prelude::*;

fn canon(mut results: Vec<QueryResult>) -> Vec<QueryResult> {
    results.sort_by(|a, b| {
        (a.query, a.window_start, a.window_end, a.key).cmp(&(
            b.query,
            b.window_start,
            b.window_end,
            b.key,
        ))
    });
    results
}

fn assert_close(a: &[QueryResult], b: &[QueryResult], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            (x.query, x.key, x.window_start, x.window_end),
            (y.query, y.key, y.window_start, y.window_end),
            "{context}"
        );
        for (v, w) in x.values.iter().zip(&y.values) {
            match (v, w) {
                (Some(v), Some(w)) => {
                    assert!(
                        (v - w).abs() <= 1e-6 * (1.0 + v.abs()),
                        "{context}: {v} vs {w}"
                    )
                }
                (v, w) => assert_eq!(v, w, "{context}"),
            }
        }
    }
}

fn single_node_reference(queries: Vec<Query>, feeds: &[Vec<Event>]) -> Vec<QueryResult> {
    let mut all: Vec<Event> = feeds.iter().flatten().copied().collect();
    all.sort_by_key(|e| e.ts);
    let mut engine = AggregationEngine::new(queries).unwrap();
    let mut last = 0;
    for ev in &all {
        engine.on_event(ev);
        last = ev.ts;
    }
    engine.on_watermark(last + 60_000);
    canon(engine.drain_results())
}

fn feeds(locals: usize, n: usize) -> Vec<Vec<Event>> {
    (0..locals)
        .map(|i| {
            DataGenerator::new(DataGenConfig {
                keys: 5,
                events_per_second: 2_000,
                seed: 100 + i as u64,
                ..Default::default()
            })
            .take(n)
            .collect()
        })
        .collect()
}

fn mixed_queries() -> Vec<Query> {
    vec![
        Query::new(
            1,
            WindowSpec::tumbling_time(1_000).unwrap(),
            AggFunction::Average,
        ),
        Query::new(
            2,
            WindowSpec::sliding_time(2_000, 500).unwrap(),
            AggFunction::Max,
        ),
        Query::new(
            3,
            WindowSpec::tumbling_time(2_000).unwrap(),
            AggFunction::Median,
        ),
        Query::new(
            4,
            WindowSpec::tumbling_count(700).unwrap(),
            AggFunction::Sum,
        ),
    ]
}

/// Every distributed system over every topology shape must match the
/// single-node reference, including the holistic and count-based groups.
#[test]
fn all_deployments_match_single_node_reference() {
    let queries = mixed_queries();
    for topology in [
        Topology::star(3),
        Topology::three_tier(1, 3),
        Topology::three_tier(3, 1),
        Topology::chain(2),
    ] {
        let locals = topology.nodes_with_role(NodeRole::Local).len();
        let f = feeds(locals, 10_000);
        let reference = single_node_reference(queries.clone(), &f);
        assert!(!reference.is_empty());
        for system in [
            DistributedSystem::Desis,
            DistributedSystem::Disco,
            DistributedSystem::Centralized(SystemKind::Scotty),
            DistributedSystem::Centralized(SystemKind::CeBuffer),
        ] {
            let cfg = ClusterConfig::new(system, queries.clone(), topology.clone());
            let report = run_cluster(cfg, f.clone()).unwrap();
            assert_close(
                &canon(report.results),
                &reference,
                &format!("{} on {} nodes", system.label(), topology.len()),
            );
        }
    }
}

/// Session windows merged across decentralized streams (Section 5.1.2)
/// must match the single-node session over the merged stream.
#[test]
fn decentralized_sessions_match_reference() {
    let queries = vec![Query::new(
        1,
        WindowSpec::session(500).unwrap(),
        AggFunction::Count,
    )];
    let f: Vec<Vec<Event>> = (0..2)
        .map(|i| {
            DataGenerator::new(DataGenConfig {
                keys: 2,
                events_per_second: 1_000,
                bursts: Some(desis::gen::BurstConfig {
                    burst_ms: 1_200,
                    gap_ms: 900,
                }),
                seed: 55 + i as u64,
                ..Default::default()
            })
            .take(8_000)
            .collect()
        })
        .collect();
    let reference = single_node_reference(queries.clone(), &f);
    let cfg = ClusterConfig::new(
        DistributedSystem::Desis,
        queries,
        Topology::three_tier(1, 2),
    );
    let report = run_cluster(cfg, f).unwrap();
    assert_close(&canon(report.results), &reference, "decentralized sessions");
}

/// The Figure 11a headline: decomposable decentralized aggregation saves
/// ~99% of network traffic against a centralized deployment.
#[test]
fn decomposable_aggregation_saves_99_percent_traffic() {
    let queries = vec![Query::new(
        1,
        WindowSpec::tumbling_time(1_000).unwrap(),
        AggFunction::Average,
    )];
    let f: Vec<Vec<Event>> = (0..2)
        .map(|i| {
            (0..200_000u64)
                .map(|j| Event::new(j / 50, (j % 10) as u32, j as f64 * 0.37))
                .map(move |mut e| {
                    e.ts += i as u64;
                    e
                })
                .collect()
        })
        .collect();
    let topo = Topology::three_tier(1, 2);
    let desis = run_cluster(
        ClusterConfig::new(DistributedSystem::Desis, queries.clone(), topo.clone()),
        f.clone(),
    )
    .unwrap();
    let central = run_cluster(
        ClusterConfig::new(
            DistributedSystem::Centralized(SystemKind::Scotty),
            queries,
            topo,
        ),
        f,
    )
    .unwrap();
    let saving = 1.0 - desis.total_bytes() as f64 / central.total_bytes() as f64;
    assert!(
        saving > 0.99,
        "expected >99% saving, got {:.3}% ({} vs {})",
        saving * 100.0,
        desis.total_bytes(),
        central.total_bytes()
    );
}

/// Deep chains multiply centralized traffic (every hop re-sends all
/// events) but barely affect Desis (Section 6.4.1).
#[test]
fn chain_topology_multiplies_centralized_traffic_only() {
    let queries = vec![Query::new(
        1,
        WindowSpec::tumbling_time(1_000).unwrap(),
        AggFunction::Sum,
    )];
    let feed: Vec<Event> = (0..50_000u64)
        .map(|i| Event::new(i / 10, (i % 5) as u32, i as f64))
        .collect();
    let measure = |system, hops| {
        let cfg = ClusterConfig::new(system, queries.clone(), Topology::chain(hops));
        run_cluster(cfg, vec![feed.clone()]).unwrap().total_bytes()
    };
    let central_1 = measure(DistributedSystem::Centralized(SystemKind::Scotty), 1);
    let central_3 = measure(DistributedSystem::Centralized(SystemKind::Scotty), 3);
    // chain(h) has h+1 links, each carrying every event: 4 links vs 2.
    assert!(central_3 as f64 > central_1 as f64 * 1.8);
    let desis_3 = measure(DistributedSystem::Desis, 3);
    assert!(desis_3 * 100 < central_3, "{desis_3} vs {central_3}");
}

/// Latency and throughput reporting are populated.
#[test]
fn cluster_report_metrics_populated() {
    let queries = vec![Query::new(
        1,
        WindowSpec::tumbling_time(500).unwrap(),
        AggFunction::Average,
    )];
    let cfg = ClusterConfig::new(DistributedSystem::Desis, queries, Topology::star(2));
    let report = run_cluster(cfg, feeds(2, 20_000)).unwrap();
    assert_eq!(report.events, 40_000);
    assert!(report.throughput() > 0.0);
    assert!(!report.latencies_ms.is_empty());
    assert!(report.bytes_for_role(NodeRole::Local) > 0);
    assert_eq!(report.local_metrics.events, 40_000);
}

/// Causal slice tracing: in a leaf → intermediate → root cluster with
/// 1/1 sampling, every emitted result's trace id resolves to a complete
/// `SliceCreated → … → ResultEmitted` provenance chain with monotone
/// timestamps that crossed both link levels.
#[test]
fn trace_chains_are_complete_across_cluster_levels() {
    let queries = vec![Query::new(
        1,
        WindowSpec::tumbling_time(500).unwrap(),
        AggFunction::Average,
    )];
    let collector = TraceCollector::new(1, 1 << 16);
    let mut cfg = ClusterConfig::new(
        DistributedSystem::Desis,
        queries,
        Topology::three_tier(1, 2),
    );
    cfg.trace = Some(collector.clone());
    let mk = |offset: u64| -> Vec<Event> {
        (0..2_000u64)
            .map(|i| Event::new(i * 5 + offset, (i % 3) as u32, i as f64))
            .collect()
    };
    let report = run_cluster(cfg, vec![mk(0), mk(1)]).unwrap();
    assert!(!report.results.is_empty());

    let timeline = collector.drain_timeline();
    assert_eq!(timeline.dropped, 0);
    assert!(timeline.complete_chains() > 0, "no complete chains");
    let mut emitted = 0;
    for chain in &timeline.chains {
        for pair in chain.events.windows(2) {
            assert!(
                pair[0].at <= pair[1].at,
                "non-monotone timestamps in chain {}",
                chain.trace
            );
        }
        if chain.result_query().is_none() {
            // Slices that only rode along inside a merge (the merged
            // slice carries one representative id) end mid-journey.
            continue;
        }
        emitted += 1;
        let names: Vec<&str> = chain.events.iter().map(|e| e.kind.name()).collect();
        assert!(
            chain.is_complete(),
            "incomplete result chain {}: {names:?}",
            chain.trace
        );
        for required in [
            "SliceCreated",
            "SliceSealed",
            "SliceEncoded",
            "LinkSend",
            "LinkRecv",
            "MergeStart",
            "MergeDone",
            "WindowAssembled",
            "ResultEmitted",
        ] {
            assert!(
                names.contains(&required),
                "chain {} missing {required}: {names:?}",
                chain.trace
            );
        }
        // The slice crossed both links (leaf → intermediate → root) and
        // was recorded on at least three distinct nodes.
        let recvs = names.iter().filter(|n| **n == "LinkRecv").count();
        assert!(recvs >= 2, "chain {} crossed {recvs} links", chain.trace);
        let nodes: std::collections::BTreeSet<u32> = chain.events.iter().map(|e| e.node).collect();
        assert!(nodes.len() >= 3, "chain {} nodes: {nodes:?}", chain.trace);
    }
    assert!(emitted > 0, "no result-bearing chains");

    // Stage breakdowns land in per-query latency histograms.
    let registry = MetricsRegistry::new();
    timeline.publish(&registry);
    let snap = registry.snapshot();
    assert!(snap.histograms["trace.q1.total_us"].count > 0);
    assert_eq!(snap.counters["trace.dropped_events"], 0);
}
