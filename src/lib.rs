//! This umbrella crate re-exports the workspace: [`desis_core`] (as
//! `core`), [`desis_net`] (as `net`), [`desis_baselines`] (as
//! `baselines`), and [`desis_gen`] (as `gen`). The crate docs below are
//! the repository README, so its `rust` blocks run as doctests.
#![doc = include_str!("../README.md")]

pub use desis_baselines as baselines;
pub use desis_core as core;
pub use desis_gen as gen;
pub use desis_net as net;

/// One-stop imports for applications.
pub mod prelude {
    pub use desis_baselines::{Processor, SystemKind};
    pub use desis_core::prelude::*;
    pub use desis_gen::{DataGenConfig, DataGenerator, QueryGenConfig, QueryGenerator};
    pub use desis_net::prelude::*;
}
