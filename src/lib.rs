//! # Desis — Efficient Window Aggregation in Decentralized Networks
//!
//! A from-scratch Rust reproduction of the EDBT 2023 paper *"Desis:
//! Efficient Window Aggregation in Decentralized Networks"*. This umbrella
//! crate re-exports the workspace:
//!
//! * [`desis_core`] (re-exported as `core`) — the Desis aggregation engine: multi-query
//!   stream slicing with partial-result sharing across window types,
//!   measures, and aggregation functions.
//! * [`desis_net`] (as `net`) — the decentralized substrate: simulated clusters
//!   of local/intermediate/root nodes with real serialization, byte
//!   accounting, and bandwidth limits.
//! * [`desis_baselines`] (as `baselines`) — the evaluated baseline systems
//!   (CeBuffer, DeBucket, DeSW, Scotty-style slicing).
//! * [`desis_gen`] (as `gen`) — deterministic data- and query-workload
//!   generators.
//!
//! See the repository's `README.md` for a tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the reproduced evaluation.
//!
//! ```
//! use desis::prelude::*;
//!
//! let queries = vec![
//!     Query::new(1, WindowSpec::tumbling_time(1_000)?, AggFunction::Max),
//!     Query::new(2, WindowSpec::session(500)?, AggFunction::Median),
//! ];
//! let mut engine = AggregationEngine::new(queries)?;
//! for ts in 0..10_000u64 {
//!     engine.on_event(&Event::new(ts, (ts % 4) as u32, (ts % 91) as f64));
//! }
//! engine.on_watermark(20_000);
//! assert!(!engine.drain_results().is_empty());
//! # Ok::<(), desis::core::DesisError>(())
//! ```

#![warn(missing_docs)]

pub use desis_baselines as baselines;
pub use desis_core as core;
pub use desis_gen as gen;
pub use desis_net as net;

/// One-stop imports for applications.
pub mod prelude {
    pub use desis_baselines::{Processor, SystemKind};
    pub use desis_core::prelude::*;
    pub use desis_gen::{DataGenConfig, DataGenerator, QueryGenConfig, QueryGenerator};
    pub use desis_net::prelude::*;
}
